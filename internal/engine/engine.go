// Package engine evaluates SPJU queries (unions of conjunctive queries with
// filters) over in-memory databases while tracking Boolean provenance: every
// output tuple is returned together with its lineage circuit in the sense of
// Imielinski and Lipski. This substitutes for the PostgreSQL + ProvSQL stack
// of the paper's implementation; downstream stages consume only the lineage
// circuits, which are the same Boolean functions either way.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/query"
)

// LineageMode selects which facts become provenance variables.
type LineageMode uint8

// Lineage modes.
const (
	// ModeEndogenous builds ELin(q, Dx, Dn) directly: exogenous facts are
	// fixed to true and only endogenous facts appear as variables. This is
	// the circuit C' of Figure 3.
	ModeEndogenous LineageMode = iota
	// ModeFull builds Lin(q, D): every fact is a variable. Used by the
	// probabilistic-database reduction, where exogenous facts get
	// probability 1.
	ModeFull
)

// Options configures evaluation.
type Options struct {
	Mode LineageMode
}

// Answer is one output tuple with its lineage.
type Answer struct {
	Tuple   db.Tuple
	Lineage *circuit.Node
}

// binding is a partial homomorphism from query variables to values, with the
// facts supporting it (one per joined atom, in join order).
type binding struct {
	vals  map[string]db.Value
	facts []*db.Fact
}

// Derivation is one witness of an output tuple: the head values together
// with the facts (endogenous and exogenous) the witnessing join used. The
// tuple's lineage is the disjunction, over its derivations, of the
// conjunction of each derivation's endogenous fact variables — which is how
// Eval assembles circuits and how the incremental layer splices them.
type Derivation struct {
	Tuple db.Tuple
	Facts []*db.Fact // sorted by fact ID, duplicates removed
}

// Conjunction builds the derivation's provenance conjunction in b.
func (dv Derivation) Conjunction(b *circuit.Builder, opts Options) *circuit.Node {
	nodes := make([]*circuit.Node, len(dv.Facts))
	for i, f := range dv.Facts {
		nodes[i] = factNode(b, f, opts)
	}
	return b.And(nodes...)
}

// Eval evaluates the UCQ over the database, building lineage circuits in b.
// Answers are sorted by tuple for determinism. A Boolean query yields at
// most one answer with the empty tuple; absence means the query is false on
// every sub-database (lineage identically false).
func Eval(d *db.Database, q *query.UCQ, b *circuit.Builder, opts Options) ([]Answer, error) {
	groups := make(map[string][]*circuit.Node)
	tuples := make(map[string]db.Tuple)
	for i := range q.Disjuncts {
		derivs, err := deriveCQ(d, &q.Disjuncts[i], -1, nil)
		if err != nil {
			return nil, fmt.Errorf("engine: disjunct %d: %w", i, err)
		}
		for _, dv := range derivs {
			key := dv.Tuple.Key()
			if _, ok := tuples[key]; !ok {
				tuples[key] = dv.Tuple
			}
			groups[key] = append(groups[key], dv.Conjunction(b, opts))
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Answer, 0, len(keys))
	for _, k := range keys {
		out = append(out, Answer{Tuple: tuples[k], Lineage: b.Or(groups[k]...)})
	}
	return out, nil
}

// EvalDelta computes the derivations newly enabled by inserting fact f: for
// every atom of every disjunct over f's relation, it re-runs the join with
// that atom pinned to f alone, so the work is proportional to the bindings
// involving the touched fact rather than to the whole database. The
// database must already contain f (a derivation may use f at several atoms).
// Derivations double-counted across pin positions are exact duplicates and
// collapse under the support-set keying of the incremental layer (and under
// the circuit builder's hash-consing either way).
func EvalDelta(d *db.Database, q *query.UCQ, f *db.Fact) ([]Derivation, error) {
	var out []Derivation
	for i := range q.Disjuncts {
		cq := &q.Disjuncts[i]
		for ai := range cq.Atoms {
			if cq.Atoms[ai].Relation != f.Relation {
				continue
			}
			derivs, err := deriveCQ(d, cq, ai, f)
			if err != nil {
				return nil, fmt.Errorf("engine: disjunct %d: %w", i, err)
			}
			out = append(out, derivs...)
		}
	}
	return out, nil
}

// EvalBoolean evaluates a Boolean UCQ and returns its lineage circuit
// (constant false when the query has no derivation).
func EvalBoolean(d *db.Database, q *query.UCQ, b *circuit.Builder, opts Options) (*circuit.Node, error) {
	if !q.IsBoolean() {
		return nil, fmt.Errorf("engine: query has arity %d, want Boolean", q.Arity())
	}
	answers, err := Eval(d, q, b, opts)
	if err != nil {
		return nil, err
	}
	if len(answers) == 0 {
		return b.False(), nil
	}
	return answers[0].Lineage, nil
}

// deriveCQ enumerates the derivations of one conjunctive query. With
// pin >= 0, atom pin ranges over only pinFact instead of its whole relation
// — the delta-join primitive behind EvalDelta.
func deriveCQ(d *db.Database, cq *query.CQ, pin int, pinFact *db.Fact) ([]Derivation, error) {
	if err := cq.Validate(); err != nil {
		return nil, err
	}
	for _, a := range cq.Atoms {
		rel := d.Relation(a.Relation)
		if rel == nil {
			return nil, fmt.Errorf("engine: %w %q", db.ErrUnknownRelation, a.Relation)
		}
		if len(a.Args) != rel.Schema.Arity() {
			return nil, fmt.Errorf("atom %s: relation has arity %d: %w", a, rel.Schema.Arity(), db.ErrArity)
		}
	}

	bindings := []binding{{vals: map[string]db.Value{}}}
	bound := make(map[string]bool)
	remainingAtoms := make([]int, len(cq.Atoms))
	for i := range remainingAtoms {
		remainingAtoms[i] = i
	}
	pendingFilters := make([]query.Filter, len(cq.Filters))
	copy(pendingFilters, cq.Filters)

	for len(remainingAtoms) > 0 && len(bindings) > 0 {
		idx := pickAtom(cq, remainingAtoms, bound, pin)
		atom := cq.Atoms[idx]
		remainingAtoms = removeInt(remainingAtoms, idx)

		facts := d.Relation(atom.Relation).Facts
		if idx == pin {
			facts = []*db.Fact{pinFact}
		}
		var err error
		bindings, err = joinAtom(atom, facts, bindings, bound)
		if err != nil {
			return nil, err
		}
		for _, v := range atom.Vars() {
			bound[v] = true
		}
		// Apply every filter whose variables are now all bound.
		pendingFilters, bindings, err = applyFilters(pendingFilters, bindings, bound)
		if err != nil {
			return nil, err
		}
	}
	if len(pendingFilters) > 0 && len(bindings) > 0 {
		return nil, fmt.Errorf("filters %v reference unbound variables", pendingFilters)
	}

	out := make([]Derivation, 0, len(bindings))
	for _, bd := range bindings {
		head := make(db.Tuple, len(cq.Head))
		for i, h := range cq.Head {
			head[i] = bd.vals[h]
		}
		out = append(out, Derivation{Tuple: head, Facts: normalizeSupport(bd.facts)})
	}
	return out, nil
}

// normalizeSupport sorts a binding's supporting facts by ID and removes
// duplicates (one fact can witness several atoms of a self-join).
func normalizeSupport(facts []*db.Fact) []*db.Fact {
	out := make([]*db.Fact, len(facts))
	copy(out, facts)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	w := 0
	for i, f := range out {
		if i > 0 && out[w-1].ID == f.ID {
			continue
		}
		out[w] = f
		w++
	}
	return out[:w]
}

// pickAtom greedily selects the next atom to join: the one with the most
// bound terms (constants count as bound), breaking ties by original order.
// This keeps intermediate binding sets small on the star-join workloads.
// A pinned atom (the single-fact delta atom) always goes first: it is the
// most selective join possible.
func pickAtom(cq *query.CQ, remaining []int, bound map[string]bool, pin int) int {
	best, bestScore := remaining[0], -1
	for _, idx := range remaining {
		if idx == pin {
			return idx
		}
		score := 0
		for _, t := range cq.Atoms[idx].Args {
			if !t.IsVar() || bound[t.Var] {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = idx, score
		}
	}
	return best
}

func removeInt(s []int, v int) []int {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// joinAtom extends each binding with every fact of the given slice
// consistent with it. It builds a hash index on the atom positions that are
// constants or already-bound variables (the same positions for every
// binding, since all bindings at a stage bind the same variable set).
func joinAtom(atom query.Atom, facts []*db.Fact, bindings []binding,
	bound map[string]bool) ([]binding, error) {

	keyPos := make([]int, 0, len(atom.Args))
	for i, t := range atom.Args {
		if !t.IsVar() || bound[t.Var] {
			keyPos = append(keyPos, i)
		}
	}

	// Index facts by the key positions.
	index := make(map[string][]*db.Fact)
	for _, f := range facts {
		index[factKey(f.Tuple, keyPos)] = append(index[factKey(f.Tuple, keyPos)], f)
	}

	var out []binding
	for _, bd := range bindings {
		key, ok := bindingKey(atom, keyPos, bd)
		if !ok {
			continue
		}
		for _, f := range index[key] {
			newVals, ok := extend(atom, f, bd, bound)
			if !ok {
				continue
			}
			support := make([]*db.Fact, len(bd.facts), len(bd.facts)+1)
			copy(support, bd.facts)
			support = append(support, f)
			out = append(out, binding{vals: newVals, facts: support})
		}
	}
	return out, nil
}

func factNode(b *circuit.Builder, f *db.Fact, opts Options) *circuit.Node {
	if f.Endogenous || opts.Mode == ModeFull {
		return b.Variable(circuit.Var(f.ID))
	}
	return b.True()
}

func factKey(t db.Tuple, pos []int) string {
	sub := make(db.Tuple, len(pos))
	for i, p := range pos {
		sub[i] = t[p]
	}
	return sub.Key()
}

// bindingKey computes the lookup key for a binding; ok is false when the
// binding can never match (unreachable in practice since key positions are
// bound by construction).
func bindingKey(atom query.Atom, keyPos []int, bd binding) (string, bool) {
	sub := make(db.Tuple, len(keyPos))
	for i, p := range keyPos {
		t := atom.Args[p]
		if t.IsVar() {
			v, ok := bd.vals[t.Var]
			if !ok {
				return "", false
			}
			sub[i] = v
		} else {
			sub[i] = t.Const
		}
	}
	return sub.Key(), true
}

// extend matches the fact against the atom under the binding, returning the
// extended variable map. Repeated unbound variables within the atom must
// agree across positions.
func extend(atom query.Atom, f *db.Fact, bd binding, bound map[string]bool) (map[string]db.Value, bool) {
	newVals := make(map[string]db.Value, len(bd.vals)+len(atom.Args))
	for k, v := range bd.vals {
		newVals[k] = v
	}
	for i, t := range atom.Args {
		val := f.Tuple[i]
		if !t.IsVar() {
			if !t.Const.Equal(val) {
				return nil, false
			}
			continue
		}
		if prev, ok := newVals[t.Var]; ok {
			if !prev.Equal(val) {
				return nil, false
			}
			continue
		}
		newVals[t.Var] = val
	}
	return newVals, true
}

// applyFilters evaluates all filters whose variables are bound, dropping
// failing bindings. It returns the still-pending filters and the surviving
// bindings.
func applyFilters(filters []query.Filter, bindings []binding, bound map[string]bool) ([]query.Filter, []binding, error) {
	var ready, pending []query.Filter
	for _, f := range filters {
		ok := bound[f.Left] && (!f.Right.IsVar() || bound[f.Right.Var])
		if ok {
			ready = append(ready, f)
		} else {
			pending = append(pending, f)
		}
	}
	if len(ready) == 0 {
		return filters, bindings, nil
	}
	kept := bindings[:0]
	for _, bd := range bindings {
		pass := true
		for _, f := range ready {
			ok, err := f.Eval(bd.vals)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				pass = false
				break
			}
		}
		if pass {
			kept = append(kept, bd)
		}
	}
	return pending, kept, nil
}
