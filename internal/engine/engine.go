// Package engine evaluates SPJU queries (unions of conjunctive queries with
// filters) over in-memory databases while tracking Boolean provenance: every
// output tuple is returned together with its lineage circuit in the sense of
// Imielinski and Lipski. This substitutes for the PostgreSQL + ProvSQL stack
// of the paper's implementation; downstream stages consume only the lineage
// circuits, which are the same Boolean functions either way.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/query"
)

// LineageMode selects which facts become provenance variables.
type LineageMode uint8

// Lineage modes.
const (
	// ModeEndogenous builds ELin(q, Dx, Dn) directly: exogenous facts are
	// fixed to true and only endogenous facts appear as variables. This is
	// the circuit C' of Figure 3.
	ModeEndogenous LineageMode = iota
	// ModeFull builds Lin(q, D): every fact is a variable. Used by the
	// probabilistic-database reduction, where exogenous facts get
	// probability 1.
	ModeFull
)

// Options configures evaluation.
type Options struct {
	Mode LineageMode
}

// Answer is one output tuple with its lineage.
type Answer struct {
	Tuple   db.Tuple
	Lineage *circuit.Node
}

// binding is a partial homomorphism from query variables to values, with the
// conjunction of supporting fact nodes.
type binding struct {
	vals map[string]db.Value
	prov []*circuit.Node
}

// Eval evaluates the UCQ over the database, building lineage circuits in b.
// Answers are sorted by tuple for determinism. A Boolean query yields at
// most one answer with the empty tuple; absence means the query is false on
// every sub-database (lineage identically false).
func Eval(d *db.Database, q *query.UCQ, b *circuit.Builder, opts Options) ([]Answer, error) {
	groups := make(map[string][]*circuit.Node)
	tuples := make(map[string]db.Tuple)
	for i := range q.Disjuncts {
		if err := evalCQ(d, &q.Disjuncts[i], b, opts, groups, tuples); err != nil {
			return nil, fmt.Errorf("engine: disjunct %d: %w", i, err)
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Answer, 0, len(keys))
	for _, k := range keys {
		out = append(out, Answer{Tuple: tuples[k], Lineage: b.Or(groups[k]...)})
	}
	return out, nil
}

// EvalBoolean evaluates a Boolean UCQ and returns its lineage circuit
// (constant false when the query has no derivation).
func EvalBoolean(d *db.Database, q *query.UCQ, b *circuit.Builder, opts Options) (*circuit.Node, error) {
	if !q.IsBoolean() {
		return nil, fmt.Errorf("engine: query has arity %d, want Boolean", q.Arity())
	}
	answers, err := Eval(d, q, b, opts)
	if err != nil {
		return nil, err
	}
	if len(answers) == 0 {
		return b.False(), nil
	}
	return answers[0].Lineage, nil
}

func evalCQ(d *db.Database, cq *query.CQ, b *circuit.Builder, opts Options,
	groups map[string][]*circuit.Node, tuples map[string]db.Tuple) error {

	if err := cq.Validate(); err != nil {
		return err
	}
	for _, a := range cq.Atoms {
		rel := d.Relation(a.Relation)
		if rel == nil {
			return fmt.Errorf("unknown relation %q", a.Relation)
		}
		if len(a.Args) != rel.Schema.Arity() {
			return fmt.Errorf("atom %s: relation has arity %d", a, rel.Schema.Arity())
		}
	}

	bindings := []binding{{vals: map[string]db.Value{}}}
	bound := make(map[string]bool)
	remainingAtoms := make([]int, len(cq.Atoms))
	for i := range remainingAtoms {
		remainingAtoms[i] = i
	}
	pendingFilters := make([]query.Filter, len(cq.Filters))
	copy(pendingFilters, cq.Filters)

	for len(remainingAtoms) > 0 && len(bindings) > 0 {
		idx := pickAtom(cq, remainingAtoms, bound)
		atom := cq.Atoms[idx]
		remainingAtoms = removeInt(remainingAtoms, idx)

		var err error
		bindings, err = joinAtom(d, atom, bindings, bound, b, opts)
		if err != nil {
			return err
		}
		for _, v := range atom.Vars() {
			bound[v] = true
		}
		// Apply every filter whose variables are now all bound.
		pendingFilters, bindings, err = applyFilters(pendingFilters, bindings, bound)
		if err != nil {
			return err
		}
	}
	if len(pendingFilters) > 0 && len(bindings) > 0 {
		return fmt.Errorf("filters %v reference unbound variables", pendingFilters)
	}

	for _, bd := range bindings {
		head := make(db.Tuple, len(cq.Head))
		for i, h := range cq.Head {
			head[i] = bd.vals[h]
		}
		key := head.Key()
		if _, ok := tuples[key]; !ok {
			tuples[key] = head
		}
		groups[key] = append(groups[key], b.And(bd.prov...))
	}
	return nil
}

// pickAtom greedily selects the next atom to join: the one with the most
// bound terms (constants count as bound), breaking ties by original order.
// This keeps intermediate binding sets small on the star-join workloads.
func pickAtom(cq *query.CQ, remaining []int, bound map[string]bool) int {
	best, bestScore := remaining[0], -1
	for _, idx := range remaining {
		score := 0
		for _, t := range cq.Atoms[idx].Args {
			if !t.IsVar() || bound[t.Var] {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = idx, score
		}
	}
	return best
}

func removeInt(s []int, v int) []int {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// joinAtom extends each binding with every fact of the atom's relation
// consistent with it. It builds a hash index on the atom positions that are
// constants or already-bound variables (the same positions for every
// binding, since all bindings at a stage bind the same variable set).
func joinAtom(d *db.Database, atom query.Atom, bindings []binding,
	bound map[string]bool, b *circuit.Builder, opts Options) ([]binding, error) {

	rel := d.Relation(atom.Relation)
	keyPos := make([]int, 0, len(atom.Args))
	for i, t := range atom.Args {
		if !t.IsVar() || bound[t.Var] {
			keyPos = append(keyPos, i)
		}
	}

	// Index facts by the key positions.
	index := make(map[string][]*db.Fact)
	for _, f := range rel.Facts {
		index[factKey(f.Tuple, keyPos)] = append(index[factKey(f.Tuple, keyPos)], f)
	}

	var out []binding
	for _, bd := range bindings {
		key, ok := bindingKey(atom, keyPos, bd)
		if !ok {
			continue
		}
		for _, f := range index[key] {
			newVals, ok := extend(atom, f, bd, bound)
			if !ok {
				continue
			}
			prov := make([]*circuit.Node, len(bd.prov), len(bd.prov)+1)
			copy(prov, bd.prov)
			prov = append(prov, factNode(b, f, opts))
			out = append(out, binding{vals: newVals, prov: prov})
		}
	}
	return out, nil
}

func factNode(b *circuit.Builder, f *db.Fact, opts Options) *circuit.Node {
	if f.Endogenous || opts.Mode == ModeFull {
		return b.Variable(circuit.Var(f.ID))
	}
	return b.True()
}

func factKey(t db.Tuple, pos []int) string {
	sub := make(db.Tuple, len(pos))
	for i, p := range pos {
		sub[i] = t[p]
	}
	return sub.Key()
}

// bindingKey computes the lookup key for a binding; ok is false when the
// binding can never match (unreachable in practice since key positions are
// bound by construction).
func bindingKey(atom query.Atom, keyPos []int, bd binding) (string, bool) {
	sub := make(db.Tuple, len(keyPos))
	for i, p := range keyPos {
		t := atom.Args[p]
		if t.IsVar() {
			v, ok := bd.vals[t.Var]
			if !ok {
				return "", false
			}
			sub[i] = v
		} else {
			sub[i] = t.Const
		}
	}
	return sub.Key(), true
}

// extend matches the fact against the atom under the binding, returning the
// extended variable map. Repeated unbound variables within the atom must
// agree across positions.
func extend(atom query.Atom, f *db.Fact, bd binding, bound map[string]bool) (map[string]db.Value, bool) {
	newVals := make(map[string]db.Value, len(bd.vals)+len(atom.Args))
	for k, v := range bd.vals {
		newVals[k] = v
	}
	for i, t := range atom.Args {
		val := f.Tuple[i]
		if !t.IsVar() {
			if !t.Const.Equal(val) {
				return nil, false
			}
			continue
		}
		if prev, ok := newVals[t.Var]; ok {
			if !prev.Equal(val) {
				return nil, false
			}
			continue
		}
		newVals[t.Var] = val
	}
	return newVals, true
}

// applyFilters evaluates all filters whose variables are bound, dropping
// failing bindings. It returns the still-pending filters and the surviving
// bindings.
func applyFilters(filters []query.Filter, bindings []binding, bound map[string]bool) ([]query.Filter, []binding, error) {
	var ready, pending []query.Filter
	for _, f := range filters {
		ok := bound[f.Left] && (!f.Right.IsVar() || bound[f.Right.Var])
		if ok {
			ready = append(ready, f)
		} else {
			pending = append(pending, f)
		}
	}
	if len(ready) == 0 {
		return filters, bindings, nil
	}
	kept := bindings[:0]
	for _, bd := range bindings {
		pass := true
		for _, f := range ready {
			ok, err := f.Eval(bd.vals)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				pass = false
				break
			}
		}
		if pass {
			kept = append(kept, bd)
		}
	}
	return pending, kept, nil
}
