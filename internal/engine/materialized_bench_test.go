package engine

import (
	"fmt"
	"testing"

	"repro/internal/db"
	"repro/internal/query"
)

// legacyJoinAtom is the joinAtom the materialized engine shipped with
// before the typed-key change: join keys are formatted strings assembled by
// Tuple.Key (one fmt.Sprintf per value, one sub-Tuple allocation per fact
// and per probe). Kept here solely as the benchmark baseline for the typed
// composite keys of keyenc.go.
func legacyJoinAtom(atom query.Atom, facts []*db.Fact, bindings []binding,
	bound map[string]bool) ([]binding, error) {

	keyPos := make([]int, 0, len(atom.Args))
	for i, t := range atom.Args {
		if !t.IsVar() || bound[t.Var] {
			keyPos = append(keyPos, i)
		}
	}
	factKey := func(t db.Tuple, pos []int) string {
		sub := make(db.Tuple, len(pos))
		for i, p := range pos {
			sub[i] = t[p]
		}
		return sub.Key()
	}
	index := make(map[string][]*db.Fact)
	for _, f := range facts {
		index[factKey(f.Tuple, keyPos)] = append(index[factKey(f.Tuple, keyPos)], f)
	}
	var out []binding
	for _, bd := range bindings {
		sub := make(db.Tuple, len(keyPos))
		for i, p := range keyPos {
			t := atom.Args[p]
			if t.IsVar() {
				sub[i] = bd.vals[t.Var]
			} else {
				sub[i] = t.Const
			}
		}
		for _, f := range index[sub.Key()] {
			newVals, ok := extend(atom, f, bd)
			if !ok {
				continue
			}
			support := make([]*db.Fact, len(bd.facts), len(bd.facts)+1)
			copy(support, bd.facts)
			support = append(support, f)
			out = append(out, binding{vals: newVals, facts: support})
		}
	}
	return out, nil
}

// joinAtomFixture builds a join stage representative of the TPC-H
// workload: 1000 probe bindings against a 1000-fact relation indexed on
// one bound variable, mixed int and string key columns.
func joinAtomFixture(b *testing.B) (query.Atom, []*db.Fact, []binding, map[string]bool) {
	b.Helper()
	facts := make([]*db.Fact, 1000)
	for i := range facts {
		facts[i] = &db.Fact{
			ID:       db.FactID(i + 1),
			Relation: "S",
			Tuple:    db.Tuple{db.Int(int64(i % 100)), db.String(fmt.Sprintf("name-%d", i))},
		}
	}
	bindings := make([]binding, 1000)
	for i := range bindings {
		bindings[i] = binding{
			vals:  map[string]db.Value{"y": db.Int(int64(i % 100))},
			facts: []*db.Fact{{ID: db.FactID(5000 + i)}},
		}
	}
	atom := query.Atom{Relation: "S", Args: []query.Term{query.V("y"), query.V("z")}}
	return atom, facts, bindings, map[string]bool{"y": true}
}

// BenchmarkJoinAtom compares the typed composite join keys against the
// legacy formatted-string keys on the same join stage; run with -benchmem
// to see the allocation drop (the strings were one Sprintf per value per
// probe).
func BenchmarkJoinAtom(b *testing.B) {
	atom, facts, bindings, bound := joinAtomFixture(b)
	b.Run("typed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := joinAtom(atom, facts, bindings, bound); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := legacyJoinAtom(atom, facts, bindings, bound); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestLegacyJoinAtomAgrees keeps the benchmark baseline honest: both
// joinAtom implementations must produce the same binding set.
func TestLegacyJoinAtomAgrees(t *testing.T) {
	atom := query.Atom{Relation: "S", Args: []query.Term{query.V("y"), query.V("z")}}
	facts := []*db.Fact{
		{ID: 1, Relation: "S", Tuple: db.Tuple{db.Int(1), db.String("a")}},
		{ID: 2, Relation: "S", Tuple: db.Tuple{db.Int(2), db.String("b")}},
		{ID: 3, Relation: "S", Tuple: db.Tuple{db.Int(1), db.String("c")}},
	}
	bindings := []binding{
		{vals: map[string]db.Value{"y": db.Int(1)}},
		{vals: map[string]db.Value{"y": db.Int(2)}},
		{vals: map[string]db.Value{"y": db.Int(9)}},
	}
	bound := map[string]bool{"y": true}
	got, err := joinAtom(atom, facts, bindings, bound)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyJoinAtom(atom, facts, bindings, bound)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("typed produced %d bindings, legacy %d", len(got), len(want))
	}
	for i := range want {
		if got[i].facts[len(got[i].facts)-1].ID != want[i].facts[len(want[i].facts)-1].ID {
			t.Fatalf("binding %d joins fact %d, legacy %d", i,
				got[i].facts[len(got[i].facts)-1].ID, want[i].facts[len(want[i].facts)-1].ID)
		}
	}
}
