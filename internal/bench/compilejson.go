package bench

// BENCH_compile.json: a machine-readable record of the knowledge-compilation
// stage's performance, emitted by cmd/benchtables alongside
// BENCH_shapley.json. The report has two parts: a serial-versus-parallel
// head-to-head of dnnf.Compile on the heaviest corpus CNFs plus synthetic
// multi-component instances (the workload the component fan-out targets),
// and a cache experiment measuring canonical (rename-invariant) versus
// byte-identical hit rates over the multi-tuple corpus — both on the natural
// corpus, where distinct tuples of one query often have isomorphic lineage,
// and on a randomly variable-permuted second pass, which isolates the
// canonical layer's contribution.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/cnf"
	"repro/internal/dnnf"
)

// CompileWorkerTiming is one worker-count measurement for one instance.
type CompileWorkerTiming struct {
	Workers int     `json:"workers"`
	Millis  float64 `json:"ms"`
	Speedup float64 `json:"speedup"` // serial time / this time
}

// CompileBenchInstance is the serial-versus-parallel record for one CNF.
type CompileBenchInstance struct {
	Name         string                `json:"name"`
	NumVars      int                   `json:"num_vars"`
	NumClauses   int                   `json:"num_clauses"`
	Components   int                   `json:"top_level_components"`
	SerialMillis float64               `json:"serial_ms"`
	Parallel     []CompileWorkerTiming `json:"parallel"`
	BestSpeedup  float64               `json:"best_speedup"`
}

// CompileCachePass summarizes one pass of the cache experiment.
type CompileCachePass struct {
	Name          string  `json:"name"`
	Compilations  int     `json:"compilations"`
	IdenticalHits int64   `json:"identical_hits"`
	RenamedHits   int64   `json:"renamed_hits"`
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
}

// CompileBench is the top-level BENCH_compile.json document.
type CompileBench struct {
	GeneratedAt   string                 `json:"generated_at"`
	MaxProcs      int                    `json:"maxprocs"`
	WorkerCounts  []int                  `json:"worker_counts"`
	Instances     []CompileBenchInstance `json:"instances"`
	Canonical     []CompileCachePass     `json:"canonical_cache"`
	ByteIdentical []CompileCachePass     `json:"byte_identical_cache"`
}

// SyntheticComponentCNF builds `blocks` variable-disjoint random 3-CNF
// blocks: a compilation instance with exactly `blocks` nontrivial top-level
// components, the shape on which component fan-out parallelizes best.
// Clauses are width-3 (width-2 clauses propagate the blocks into triviality)
// at a clause/variable ratio of clausesPer/varsPer; 2.5 with ~30 variables
// per block gives tens of milliseconds of real search per block. The
// construction is deterministic in seed.
func SyntheticComponentCNF(blocks, varsPer, clausesPer int, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := &cnf.Formula{Aux: map[int]bool{}}
	for b := 0; b < blocks; b++ {
		base := b * varsPer
		for i := 0; i < clausesPer; i++ {
			clause := make(cnf.Clause, 0, 3)
			for j := 0; j < 3; j++ {
				v := base + 1 + rng.Intn(varsPer)
				l := cnf.Lit(v)
				if rng.Intn(2) == 0 {
					l = -l
				}
				clause = append(clause, l)
			}
			f.Clauses = append(f.Clauses, clause)
		}
	}
	f.MaxVar = blocks * varsPer
	return f
}

// permuteVars returns a copy of f with its variables renamed by a random
// bijection into a disjoint id range, preserving polarities and auxiliary
// markers — an isomorphic formula that only a canonical cache can recognize.
func permuteVars(f *cnf.Formula, rng *rand.Rand) *cnf.Formula {
	vars := f.Vars()
	targets := make([]int, len(vars))
	for i := range targets {
		targets[i] = f.MaxVar + i + 1
	}
	rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	m := make(map[int]int, len(vars))
	for i, v := range vars {
		m[v] = targets[i]
	}
	out := &cnf.Formula{Aux: make(map[int]bool)}
	for _, cl := range f.Clauses {
		rc := make(cnf.Clause, len(cl))
		for i, l := range cl {
			nv := cnf.Lit(m[l.Var()])
			if !l.Positive() {
				nv = -nv
			}
			rc[i] = nv
		}
		out.Clauses = append(out.Clauses, rc)
	}
	for v, isAux := range f.Aux {
		if nv, ok := m[v]; ok {
			out.Aux[nv] = isAux
		}
	}
	for _, v := range out.Vars() {
		if v > out.MaxVar {
			out.MaxVar = v
		}
	}
	return out
}

type namedCNF struct {
	name string
	f    *cnf.Formula
}

// compileInstances picks the head-to-head set: the heaviest successful
// corpus CNFs plus synthetic instances with 4 and 8 nontrivial components.
func compileInstances(c *Corpus, corpusTop int) []namedCNF {
	tuples := c.SuccessfulTuples()
	sort.Slice(tuples, func(i, j int) bool {
		if tuples[i].NumClauses != tuples[j].NumClauses {
			return tuples[i].NumClauses > tuples[j].NumClauses
		}
		return tuples[i].NumFacts > tuples[j].NumFacts
	})
	if corpusTop > len(tuples) {
		corpusTop = len(tuples)
	}
	var out []namedCNF
	for _, t := range tuples[:corpusTop] {
		out = append(out, namedCNF{
			name: fmt.Sprintf("%s/%s n=%d", t.Dataset, t.Query, t.NumFacts),
			f:    t.CNF,
		})
	}
	out = append(out,
		namedCNF{name: "synthetic components=4", f: SyntheticComponentCNF(4, 30, 75, 7)},
		namedCNF{name: "synthetic components=8", f: SyntheticComponentCNF(8, 30, 75, 11)},
	)
	return out
}

// timeCompile returns the best-of-rounds wall time of one configuration and
// the compiled circuit's model count for cross-checking.
func timeCompile(ctx context.Context, f *cnf.Formula, workers, rounds int) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		_, _, err := dnnf.Compile(ctx, f, dnnf.Options{Workers: workers, Timeout: 30 * time.Second})
		elapsed := time.Since(t0)
		if err != nil {
			return 0, err
		}
		if r == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// CompileBenchReport builds the BENCH_compile.json document from a finished
// corpus run: per-instance serial-versus-parallel compile timings at the
// given worker counts (each configuration cross-checked to produce the same
// model count as the serial circuit), and canonical-versus-byte-identical
// cache hit rates over the corpus CNFs in a natural pass and a
// variable-permuted pass.
func CompileBenchReport(ctx context.Context, c *Corpus, workerCounts []int, rounds int) (*CompileBench, error) {
	if rounds < 1 {
		rounds = 1
	}
	rep := &CompileBench{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		MaxProcs:     runtime.GOMAXPROCS(0),
		WorkerCounts: workerCounts,
	}

	for _, inst := range compileInstances(c, 3) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		serialRoot, _, err := dnnf.Compile(ctx, inst.f, dnnf.Options{Workers: 1, Timeout: 30 * time.Second})
		if err != nil {
			return nil, fmt.Errorf("bench: serial compile of %s: %w", inst.name, err)
		}
		universe := inst.f.Vars()
		want := dnnf.CountModels(serialRoot, universe)
		serial, err := timeCompile(ctx, inst.f, 1, rounds)
		if err != nil {
			return nil, fmt.Errorf("bench: timing %s serial: %w", inst.name, err)
		}
		rec := CompileBenchInstance{
			Name:         inst.name,
			NumVars:      len(universe),
			NumClauses:   inst.f.NumClauses(),
			Components:   dnnf.TopLevelComponents(inst.f),
			SerialMillis: float64(serial) / float64(time.Millisecond),
		}
		for _, w := range workerCounts {
			if w <= 1 {
				continue
			}
			root, _, err := dnnf.Compile(ctx, inst.f, dnnf.Options{Workers: w, Timeout: 30 * time.Second})
			if err != nil {
				return nil, fmt.Errorf("bench: %s workers=%d: %w", inst.name, w, err)
			}
			if got := dnnf.CountModels(root, universe); got.Cmp(want) != 0 {
				return nil, fmt.Errorf("bench: %s workers=%d: model count %v, want %v", inst.name, w, got, want)
			}
			elapsed, err := timeCompile(ctx, inst.f, w, rounds)
			if err != nil {
				return nil, fmt.Errorf("bench: timing %s workers=%d: %w", inst.name, w, err)
			}
			speedup := 0.0
			if elapsed > 0 {
				speedup = float64(serial) / float64(elapsed)
			}
			rec.Parallel = append(rec.Parallel, CompileWorkerTiming{
				Workers: w,
				Millis:  float64(elapsed) / float64(time.Millisecond),
				Speedup: speedup,
			})
			if speedup > rec.BestSpeedup {
				rec.BestSpeedup = speedup
			}
		}
		rep.Instances = append(rep.Instances, rec)
	}

	var corpusCNFs []*cnf.Formula
	for _, t := range c.SuccessfulTuples() {
		if t.CNF != nil {
			corpusCNFs = append(corpusCNFs, t.CNF)
		}
	}
	canonical, err := cachePasses(ctx, corpusCNFs, false)
	if err != nil {
		return nil, err
	}
	rep.Canonical = canonical
	byteIdentical, err := cachePasses(ctx, corpusCNFs, true)
	if err != nil {
		return nil, err
	}
	rep.ByteIdentical = byteIdentical
	return rep, nil
}

// cachePasses runs the two-pass cache experiment: a natural pass over the
// corpus CNFs as the query pipeline produced them, then a permuted pass over
// renamed-isomorphic copies. Pass statistics are deltas, so the permuted
// pass shows exactly what the canonical layer adds over byte-identical keys.
func cachePasses(ctx context.Context, formulas []*cnf.Formula, noCanon bool) ([]CompileCachePass, error) {
	cache := dnnf.NewCompileCache(4 * len(formulas))
	opts := dnnf.Options{Cache: cache, NoCanonicalCache: noCanon, Timeout: 30 * time.Second}
	rng := rand.New(rand.NewSource(13))
	var passes []CompileCachePass
	var prevIdentical, prevRenamed, prevMisses int64
	for _, pass := range []struct {
		name    string
		permute bool
	}{
		{"natural corpus", false},
		{"permuted corpus", true},
	} {
		for _, f := range formulas {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			g := f
			if pass.permute {
				g = permuteVars(f, rng)
			}
			if _, _, err := dnnf.Compile(ctx, g, opts); err != nil {
				return nil, fmt.Errorf("bench: cache pass %q: %w", pass.name, err)
			}
		}
		identical, renamed, misses := cache.CanonicalStats()
		di, dr, dm := identical-prevIdentical, renamed-prevRenamed, misses-prevMisses
		prevIdentical, prevRenamed, prevMisses = identical, renamed, misses
		rate := 0.0
		if di+dr+dm > 0 {
			rate = float64(di+dr) / float64(di+dr+dm)
		}
		passes = append(passes, CompileCachePass{
			Name:          pass.name,
			Compilations:  len(formulas),
			IdenticalHits: di,
			RenamedHits:   dr,
			Misses:        dm,
			HitRate:       rate,
		})
	}
	return passes, nil
}

// WriteCompileBench writes the report as indented JSON.
func WriteCompileBench(path string, rep *CompileBench) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
