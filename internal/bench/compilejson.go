package bench

// BENCH_compile.json: a machine-readable record of the knowledge-compilation
// stage's performance, emitted by cmd/benchtables alongside
// BENCH_shapley.json. The report has two parts: a serial-versus-parallel
// head-to-head of dnnf.Compile on the heaviest corpus CNFs plus synthetic
// multi-component instances (the workload the component fan-out targets),
// and a cache experiment measuring canonical (rename-invariant) versus
// byte-identical hit rates over the multi-tuple corpus — both on the natural
// corpus, where distinct tuples of one query often have isomorphic lineage,
// and on a randomly variable-permuted second pass, which isolates the
// canonical layer's contribution.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/dnnf"
)

// CompileWorkerTiming is one worker-count measurement for one instance.
type CompileWorkerTiming struct {
	Workers int     `json:"workers"`
	Millis  float64 `json:"ms"`
	Speedup float64 `json:"speedup"` // serial time / this time
}

// CompileBenchInstance is the serial-versus-parallel record for one CNF.
type CompileBenchInstance struct {
	Name         string                `json:"name"`
	NumVars      int                   `json:"num_vars"`
	NumClauses   int                   `json:"num_clauses"`
	Components   int                   `json:"top_level_components"`
	SerialMillis float64               `json:"serial_ms"`
	Parallel     []CompileWorkerTiming `json:"parallel"`
	BestSpeedup  float64               `json:"best_speedup"`
}

// CompileCachePass summarizes one pass of the cache experiment.
type CompileCachePass struct {
	Name          string  `json:"name"`
	Compilations  int     `json:"compilations"`
	IdenticalHits int64   `json:"identical_hits"`
	RenamedHits   int64   `json:"renamed_hits"`
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
}

// SingleComponentCell is one (workers, speculation) measurement of a
// single-component instance, cross-checked against the sequential compiler.
type SingleComponentCell struct {
	Workers int     `json:"workers"`
	Millis  float64 `json:"ms"`
	Speedup float64 `json:"speedup"` // sequential time / this time
	// SpeculatedDecisions records how much branch-level parallelism
	// engaged in this cell's compilations.
	SpeculatedDecisions int `json:"speculated_decisions"`
	// ModelCountOK and ShapleyOK report the big.Rat cross-checks against
	// the workers=1 compiler: identical model count, and identical exact
	// Shapley values for every endogenous fact.
	ModelCountOK bool `json:"model_count_ok"`
	ShapleyOK    bool `json:"shapley_ok"`
}

// SingleComponentInstance is the speculative-scaling record for one
// single-component CNF — the shape component fan-out cannot parallelize.
type SingleComponentInstance struct {
	Name             string                `json:"name"`
	NumVars          int                   `json:"num_vars"`
	NumClauses       int                   `json:"num_clauses"`
	SequentialMillis float64               `json:"sequential_ms"`
	Cells            []SingleComponentCell `json:"cells"`
	BestSpeedup      float64               `json:"best_speedup"`
}

// PortfolioBenchInstance records the heuristic race on one CNF: each
// heuristic compiled alone (sequentially) versus the portfolio racing them.
type PortfolioBenchInstance struct {
	Name        string             `json:"name"`
	OrderMillis map[string]float64 `json:"order_ms"` // per-heuristic solo time
	RaceMillis  float64            `json:"race_ms"`  // portfolio wall time at RaceWorkers
	RaceWorkers int                `json:"race_workers"`
	Winner      string             `json:"winner"`
	// SpeedupVsDefault is the default heuristic's solo time over the race
	// time — what portfolio mode buys over just running the default.
	SpeedupVsDefault float64 `json:"speedup_vs_default"`
	ModelCountOK     bool    `json:"model_count_ok"`
}

// CompileBench is the top-level BENCH_compile.json document.
type CompileBench struct {
	GeneratedAt  string                 `json:"generated_at"`
	MaxProcs     int                    `json:"maxprocs"`
	WorkerCounts []int                  `json:"worker_counts"`
	Instances    []CompileBenchInstance `json:"instances"`
	// SingleComponent is the speculative-branching head-to-head on the
	// heaviest single-component corpus CNFs (plus a synthetic hard one):
	// near-linear worker scaling here is the target the speculation work
	// exists for, since component fan-out has nothing to split.
	SingleComponent []SingleComponentInstance `json:"single_component_scaling"`
	// Portfolio is the variable-ordering race experiment.
	Portfolio     []PortfolioBenchInstance `json:"portfolio"`
	Canonical     []CompileCachePass       `json:"canonical_cache"`
	ByteIdentical []CompileCachePass       `json:"byte_identical_cache"`
}

// SyntheticComponentCNF builds `blocks` variable-disjoint random 3-CNF
// blocks: a compilation instance with exactly `blocks` nontrivial top-level
// components, the shape on which component fan-out parallelizes best.
// Clauses are width-3 (width-2 clauses propagate the blocks into triviality)
// at a clause/variable ratio of clausesPer/varsPer; 2.5 with ~30 variables
// per block gives tens of milliseconds of real search per block. The
// construction is deterministic in seed.
func SyntheticComponentCNF(blocks, varsPer, clausesPer int, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := &cnf.Formula{Aux: map[int]bool{}}
	for b := 0; b < blocks; b++ {
		base := b * varsPer
		for i := 0; i < clausesPer; i++ {
			clause := make(cnf.Clause, 0, 3)
			for j := 0; j < 3; j++ {
				v := base + 1 + rng.Intn(varsPer)
				l := cnf.Lit(v)
				if rng.Intn(2) == 0 {
					l = -l
				}
				clause = append(clause, l)
			}
			f.Clauses = append(f.Clauses, clause)
		}
	}
	f.MaxVar = blocks * varsPer
	return f
}

// permuteVars returns a copy of f with its variables renamed by a random
// bijection into a disjoint id range, preserving polarities and auxiliary
// markers — an isomorphic formula that only a canonical cache can recognize.
func permuteVars(f *cnf.Formula, rng *rand.Rand) *cnf.Formula {
	vars := f.Vars()
	targets := make([]int, len(vars))
	for i := range targets {
		targets[i] = f.MaxVar + i + 1
	}
	rng.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	m := make(map[int]int, len(vars))
	for i, v := range vars {
		m[v] = targets[i]
	}
	out := &cnf.Formula{Aux: make(map[int]bool)}
	for _, cl := range f.Clauses {
		rc := make(cnf.Clause, len(cl))
		for i, l := range cl {
			nv := cnf.Lit(m[l.Var()])
			if !l.Positive() {
				nv = -nv
			}
			rc[i] = nv
		}
		out.Clauses = append(out.Clauses, rc)
	}
	for v, isAux := range f.Aux {
		if nv, ok := m[v]; ok {
			out.Aux[nv] = isAux
		}
	}
	for _, v := range out.Vars() {
		if v > out.MaxVar {
			out.MaxVar = v
		}
	}
	return out
}

type namedCNF struct {
	name string
	f    *cnf.Formula
}

// compileInstances picks the head-to-head set: the heaviest successful
// corpus CNFs plus synthetic instances with 4 and 8 nontrivial components.
func compileInstances(c *Corpus, corpusTop int) []namedCNF {
	tuples := c.SuccessfulTuples()
	sort.Slice(tuples, func(i, j int) bool {
		if tuples[i].NumClauses != tuples[j].NumClauses {
			return tuples[i].NumClauses > tuples[j].NumClauses
		}
		return tuples[i].NumFacts > tuples[j].NumFacts
	})
	if corpusTop > len(tuples) {
		corpusTop = len(tuples)
	}
	var out []namedCNF
	for _, t := range tuples[:corpusTop] {
		out = append(out, namedCNF{
			name: fmt.Sprintf("%s/%s n=%d", t.Dataset, t.Query, t.NumFacts),
			f:    t.CNF,
		})
	}
	out = append(out,
		namedCNF{name: "synthetic components=4", f: SyntheticComponentCNF(4, 30, 75, 7)},
		namedCNF{name: "synthetic components=8", f: SyntheticComponentCNF(8, 30, 75, 11)},
	)
	return out
}

// timeCompile returns the best-of-rounds wall time of one configuration and
// the compiled circuit's model count for cross-checking.
func timeCompile(ctx context.Context, f *cnf.Formula, workers, rounds int) (time.Duration, error) {
	d, _, err := timeCompileOpts(ctx, f, dnnf.Options{Workers: workers, Timeout: 30 * time.Second}, rounds)
	return d, err
}

// timeCompileOpts is timeCompile for an arbitrary option set; it also
// returns the final round's stats (speculation counters, portfolio winner).
func timeCompileOpts(ctx context.Context, f *cnf.Formula, opts dnnf.Options, rounds int) (time.Duration, dnnf.Stats, error) {
	best := time.Duration(0)
	var stats dnnf.Stats
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		_, s, err := dnnf.Compile(ctx, f, opts)
		elapsed := time.Since(t0)
		if err != nil {
			return 0, stats, err
		}
		stats = s
		if r == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, stats, nil
}

// singleCNF is a single-component benchmark instance with its endogenous
// fact universe (for the Shapley cross-check).
type singleCNF struct {
	name string
	f    *cnf.Formula
	endo []db.FactID
}

// singleComponentInstances picks the heaviest successful corpus CNFs whose
// top-level clause set is one connected component — the instances component
// fan-out cannot parallelize — plus one synthetic hard single-component
// 3-CNF at the ~3.5 clause/variable ratio that maximizes search depth.
func singleComponentInstances(c *Corpus, top int) []singleCNF {
	tuples := c.SuccessfulTuples()
	sort.Slice(tuples, func(i, j int) bool {
		if tuples[i].NumClauses != tuples[j].NumClauses {
			return tuples[i].NumClauses > tuples[j].NumClauses
		}
		return tuples[i].NumFacts > tuples[j].NumFacts
	})
	var out []singleCNF
	for _, t := range tuples {
		if len(out) >= top {
			break
		}
		if t.CNF == nil || dnnf.TopLevelComponents(t.CNF) != 1 {
			continue
		}
		out = append(out, singleCNF{
			name: fmt.Sprintf("%s/%s n=%d", t.Dataset, t.Query, t.NumFacts),
			f:    t.CNF,
			endo: t.Endo,
		})
	}
	synth := SyntheticComponentCNF(1, 40, 140, 17)
	var endo []db.FactID
	for _, v := range synth.Vars() {
		endo = append(endo, db.FactID(v))
	}
	out = append(out, singleCNF{name: "synthetic single-component", f: synth, endo: endo})
	return out
}

// singleComponentScaling measures speculative-branching worker scaling on
// single-component instances: each (workers, speculate) cell's circuit is
// cross-checked big.Rat-identical to the sequential compiler's, both as a
// model count and as the exact Shapley value of every endogenous fact.
func singleComponentScaling(ctx context.Context, instances []singleCNF, workerCounts []int, rounds int) ([]SingleComponentInstance, error) {
	var out []SingleComponentInstance
	for _, inst := range instances {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		isAux := func(v int) bool { return inst.f.Aux[v] }
		seqRoot, _, err := dnnf.Compile(ctx, inst.f, dnnf.Options{Workers: 1, Timeout: 30 * time.Second})
		if err != nil {
			return nil, fmt.Errorf("bench: sequential compile of %s: %w", inst.name, err)
		}
		universe := inst.f.Vars()
		wantModels := dnnf.CountModels(seqRoot, universe)
		wantValues, err := core.ShapleyAll(ctx, dnnf.EliminateAux(seqRoot, isAux), inst.endo, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: sequential shapley of %s: %w", inst.name, err)
		}
		seq, _, err := timeCompileOpts(ctx, inst.f, dnnf.Options{Workers: 1, Timeout: 30 * time.Second}, rounds)
		if err != nil {
			return nil, fmt.Errorf("bench: timing %s sequential: %w", inst.name, err)
		}
		rec := SingleComponentInstance{
			Name:             inst.name,
			NumVars:          len(universe),
			NumClauses:       inst.f.NumClauses(),
			SequentialMillis: float64(seq) / float64(time.Millisecond),
		}
		for _, w := range workerCounts {
			opts := dnnf.Options{Workers: w, Speculate: true, Timeout: 30 * time.Second}
			root, _, err := dnnf.Compile(ctx, inst.f, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: %s speculate workers=%d: %w", inst.name, w, err)
			}
			cell := SingleComponentCell{Workers: w}
			cell.ModelCountOK = dnnf.CountModels(root, universe).Cmp(wantModels) == 0
			values, err := core.ShapleyAll(ctx, dnnf.EliminateAux(root, isAux), inst.endo, 0)
			if err != nil {
				return nil, fmt.Errorf("bench: %s shapley workers=%d: %w", inst.name, w, err)
			}
			cell.ShapleyOK = len(values) == len(wantValues)
			for fid, want := range wantValues {
				if got, ok := values[fid]; !ok || got.Cmp(want) != 0 {
					cell.ShapleyOK = false
					break
				}
			}
			elapsed, stats, err := timeCompileOpts(ctx, inst.f, opts, rounds)
			if err != nil {
				return nil, fmt.Errorf("bench: timing %s speculate workers=%d: %w", inst.name, w, err)
			}
			cell.Millis = float64(elapsed) / float64(time.Millisecond)
			cell.SpeculatedDecisions = stats.SpeculatedDecisions
			if elapsed > 0 {
				cell.Speedup = float64(seq) / float64(elapsed)
			}
			if cell.Speedup > rec.BestSpeedup {
				rec.BestSpeedup = cell.Speedup
			}
			rec.Cells = append(rec.Cells, cell)
		}
		out = append(out, rec)
	}
	return out, nil
}

// portfolioBench races the branching heuristics on each instance against
// each heuristic compiled solo, recording the winner and what the race buys
// over just running the default order.
func portfolioBench(ctx context.Context, instances []singleCNF, rounds int) ([]PortfolioBenchInstance, error) {
	orders := []dnnf.VarOrder{dnnf.OrderMostFrequent, dnnf.OrderJeroslowWang}
	var out []PortfolioBenchInstance
	for _, inst := range instances {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		universe := inst.f.Vars()
		seqRoot, _, err := dnnf.Compile(ctx, inst.f, dnnf.Options{Workers: 1, Timeout: 30 * time.Second})
		if err != nil {
			return nil, fmt.Errorf("bench: portfolio baseline %s: %w", inst.name, err)
		}
		wantModels := dnnf.CountModels(seqRoot, universe)
		rec := PortfolioBenchInstance{
			Name:        inst.name,
			OrderMillis: make(map[string]float64, len(orders)),
			RaceWorkers: 4,
		}
		var defaultSolo time.Duration
		for _, o := range orders {
			solo, _, err := timeCompileOpts(ctx, inst.f, dnnf.Options{Workers: 1, Order: o, Timeout: 30 * time.Second}, rounds)
			if err != nil {
				return nil, fmt.Errorf("bench: %s order=%s: %w", inst.name, o, err)
			}
			rec.OrderMillis[o.String()] = float64(solo) / float64(time.Millisecond)
			if o == dnnf.OrderMostFrequent {
				defaultSolo = solo
			}
		}
		raceOpts := dnnf.Options{Workers: rec.RaceWorkers, Portfolio: true, Timeout: 30 * time.Second}
		root, _, err := dnnf.Compile(ctx, inst.f, raceOpts)
		if err != nil {
			return nil, fmt.Errorf("bench: %s portfolio: %w", inst.name, err)
		}
		rec.ModelCountOK = dnnf.CountModels(root, universe).Cmp(wantModels) == 0
		race, stats, err := timeCompileOpts(ctx, inst.f, raceOpts, rounds)
		if err != nil {
			return nil, fmt.Errorf("bench: timing %s portfolio: %w", inst.name, err)
		}
		rec.RaceMillis = float64(race) / float64(time.Millisecond)
		rec.Winner = stats.PortfolioWinner
		if race > 0 {
			rec.SpeedupVsDefault = float64(defaultSolo) / float64(race)
		}
		out = append(out, rec)
	}
	return out, nil
}

// CompileBenchReport builds the BENCH_compile.json document from a finished
// corpus run: per-instance serial-versus-parallel compile timings at the
// given worker counts (each configuration cross-checked to produce the same
// model count as the serial circuit), and canonical-versus-byte-identical
// cache hit rates over the corpus CNFs in a natural pass and a
// variable-permuted pass.
func CompileBenchReport(ctx context.Context, c *Corpus, workerCounts []int, rounds int) (*CompileBench, error) {
	if rounds < 1 {
		rounds = 1
	}
	rep := &CompileBench{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		MaxProcs:     runtime.GOMAXPROCS(0),
		WorkerCounts: workerCounts,
	}

	for _, inst := range compileInstances(c, 3) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		serialRoot, _, err := dnnf.Compile(ctx, inst.f, dnnf.Options{Workers: 1, Timeout: 30 * time.Second})
		if err != nil {
			return nil, fmt.Errorf("bench: serial compile of %s: %w", inst.name, err)
		}
		universe := inst.f.Vars()
		want := dnnf.CountModels(serialRoot, universe)
		serial, err := timeCompile(ctx, inst.f, 1, rounds)
		if err != nil {
			return nil, fmt.Errorf("bench: timing %s serial: %w", inst.name, err)
		}
		rec := CompileBenchInstance{
			Name:         inst.name,
			NumVars:      len(universe),
			NumClauses:   inst.f.NumClauses(),
			Components:   dnnf.TopLevelComponents(inst.f),
			SerialMillis: float64(serial) / float64(time.Millisecond),
		}
		for _, w := range workerCounts {
			if w <= 1 {
				continue
			}
			root, _, err := dnnf.Compile(ctx, inst.f, dnnf.Options{Workers: w, Timeout: 30 * time.Second})
			if err != nil {
				return nil, fmt.Errorf("bench: %s workers=%d: %w", inst.name, w, err)
			}
			if got := dnnf.CountModels(root, universe); got.Cmp(want) != 0 {
				return nil, fmt.Errorf("bench: %s workers=%d: model count %v, want %v", inst.name, w, got, want)
			}
			elapsed, err := timeCompile(ctx, inst.f, w, rounds)
			if err != nil {
				return nil, fmt.Errorf("bench: timing %s workers=%d: %w", inst.name, w, err)
			}
			speedup := 0.0
			if elapsed > 0 {
				speedup = float64(serial) / float64(elapsed)
			}
			rec.Parallel = append(rec.Parallel, CompileWorkerTiming{
				Workers: w,
				Millis:  float64(elapsed) / float64(time.Millisecond),
				Speedup: speedup,
			})
			if speedup > rec.BestSpeedup {
				rec.BestSpeedup = speedup
			}
		}
		rep.Instances = append(rep.Instances, rec)
	}

	// Speculation and portfolio mode target the instances the section above
	// cannot parallelize: single-component CNFs, measured at workers 1/2/4
	// per the scaling target.
	singles := singleComponentInstances(c, 3)
	single, err := singleComponentScaling(ctx, singles, []int{1, 2, 4}, rounds)
	if err != nil {
		return nil, err
	}
	rep.SingleComponent = single
	portfolio, err := portfolioBench(ctx, singles, rounds)
	if err != nil {
		return nil, err
	}
	rep.Portfolio = portfolio

	var corpusCNFs []*cnf.Formula
	for _, t := range c.SuccessfulTuples() {
		if t.CNF != nil {
			corpusCNFs = append(corpusCNFs, t.CNF)
		}
	}
	canonical, err := cachePasses(ctx, corpusCNFs, false)
	if err != nil {
		return nil, err
	}
	rep.Canonical = canonical
	byteIdentical, err := cachePasses(ctx, corpusCNFs, true)
	if err != nil {
		return nil, err
	}
	rep.ByteIdentical = byteIdentical
	return rep, nil
}

// cachePasses runs the two-pass cache experiment: a natural pass over the
// corpus CNFs as the query pipeline produced them, then a permuted pass over
// renamed-isomorphic copies. Pass statistics are deltas, so the permuted
// pass shows exactly what the canonical layer adds over byte-identical keys.
func cachePasses(ctx context.Context, formulas []*cnf.Formula, noCanon bool) ([]CompileCachePass, error) {
	cache := dnnf.NewCompileCache(4 * len(formulas))
	opts := dnnf.Options{Cache: cache, NoCanonicalCache: noCanon, Timeout: 30 * time.Second}
	rng := rand.New(rand.NewSource(13))
	var passes []CompileCachePass
	var prevIdentical, prevRenamed, prevMisses int64
	for _, pass := range []struct {
		name    string
		permute bool
	}{
		{"natural corpus", false},
		{"permuted corpus", true},
	} {
		for _, f := range formulas {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			g := f
			if pass.permute {
				g = permuteVars(f, rng)
			}
			if _, _, err := dnnf.Compile(ctx, g, opts); err != nil {
				return nil, fmt.Errorf("bench: cache pass %q: %w", pass.name, err)
			}
		}
		identical, renamed, misses := cache.CanonicalStats()
		di, dr, dm := identical-prevIdentical, renamed-prevRenamed, misses-prevMisses
		prevIdentical, prevRenamed, prevMisses = identical, renamed, misses
		rate := 0.0
		if di+dr+dm > 0 {
			rate = float64(di+dr) / float64(di+dr+dm)
		}
		passes = append(passes, CompileCachePass{
			Name:          pass.name,
			Compilations:  len(formulas),
			IdenticalHits: di,
			RenamedHits:   dr,
			Misses:        dm,
			HitRate:       rate,
		})
	}
	return passes, nil
}

// WriteCompileBench writes the report as indented JSON.
func WriteCompileBench(path string, rep *CompileBench) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
