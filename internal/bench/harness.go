// Package bench is the experiment harness: it runs the full pipeline over
// the TPC-H and IMDB query suites, collects per-output-tuple measurements,
// and renders the paper's evaluation artifacts — Table 1, Table 2, and
// Figures 4 through 8 — as text tables with the same rows/series the paper
// reports.
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/dnnf"
	"repro/internal/engine"
	"repro/internal/imdb"
	"repro/internal/query"
	"repro/internal/tpch"
)

// NamedQuery is a suite entry.
type NamedQuery struct {
	Name string
	Q    *query.UCQ
}

// Options configures a corpus run.
type Options struct {
	// Timeout is the exact-computation budget per output tuple (both the
	// compilation and Algorithm 1 step get this budget), mirroring the
	// paper's per-tuple timeout. Zero means no limit.
	Timeout time.Duration
	// MaxNodes bounds d-DNNF size, standing in for memory exhaustion.
	MaxNodes int
	// TPCH and IMDB control the generated instance sizes.
	TPCH tpch.Config
	IMDB imdb.Config
	// MaxTuplesPerQuery truncates very large query outputs to keep harness
	// runs bounded; zero means no truncation.
	MaxTuplesPerQuery int
	// Workers fans Algorithm 1's per-fact loop out across goroutines for
	// each tuple (≤ 0 = GOMAXPROCS, 1 = serial). Tuples themselves run
	// serially so per-tuple timings stay comparable to the paper's.
	Workers int
	// CompileWorkers fans each tuple's knowledge compilation out across its
	// CNF's independent components (≤ 0 = GOMAXPROCS, 1 = sequential).
	CompileWorkers int
	// NoCanonicalCache keys the compile cache byte-identically instead of
	// canonically (only meaningful with CacheSize > 0).
	NoCanonicalCache bool
	// Strategy selects the Algorithm 1 evaluation mode (auto, per-fact, or
	// gradient); the values are identical, only the cost differs.
	Strategy core.ShapleyStrategy
	// KeepDNNF retains each tuple's reduced d-DNNF on its TupleResult, as
	// required by ShapleyBenchReport's strategy head-to-head. Off by
	// default so large corpus runs don't pin every compiled circuit.
	KeepDNNF bool
	// CacheSize sizes a cross-call d-DNNF compilation cache shared by the
	// whole corpus run; zero disables it (every tuple compiles afresh, the
	// configuration the paper's tables measure).
	CacheSize int
}

// DefaultOptions returns a laptop-scale configuration.
func DefaultOptions() Options {
	return Options{
		Timeout:  2500 * time.Millisecond,
		MaxNodes: 2_000_000,
		TPCH:     tpch.DefaultConfig(),
		IMDB:     imdb.DefaultConfig(),
	}
}

// TupleResult holds all measurements for one output tuple.
type TupleResult struct {
	Dataset string
	Query   string
	Tuple   db.Tuple

	NumFacts   int // distinct endogenous facts in the lineage
	NumClauses int // Tseytin CNF clauses
	DNNFSize   int // nodes after Lemma 4.6 (0 on failure)

	KCTime      time.Duration // Tseytin + compile + eliminate
	ShapleyTime time.Duration // Algorithm 1 over all facts
	Success     bool
	FailReason  string

	Values core.Values // exact Shapley values (nil on failure)
	ELin   *circuit.Node
	DNNF   *dnnf.Node // reduced d-DNNF (nil unless Options.KeepDNNF)
	CNF    *cnf.Formula
	Endo   []db.FactID
}

// ExactTotal is the exact pipeline's wall-clock cost for this tuple.
func (t *TupleResult) ExactTotal() time.Duration { return t.KCTime + t.ShapleyTime }

// QueryRun holds all measurements for one query.
type QueryRun struct {
	Dataset  string
	Name     string
	Q        *query.UCQ
	ExecTime time.Duration // provenance generation (query evaluation)
	Tuples   []*TupleResult
	// CacheStats is the compile-cache counter delta attributable to this
	// query's tuples — its canonical hit rate says how much isomorphic
	// lineage the query's answers share. Zero when the corpus ran without
	// a cross-call cache.
	CacheStats dnnf.CacheStats
}

// SuccessRate returns the fraction of output tuples whose exact computation
// succeeded.
func (r *QueryRun) SuccessRate() float64 {
	if len(r.Tuples) == 0 {
		return 1
	}
	n := 0
	for _, t := range r.Tuples {
		if t.Success {
			n++
		}
	}
	return float64(n) / float64(len(r.Tuples))
}

// Corpus is the full set of per-tuple measurements across both suites.
type Corpus struct {
	Runs []*QueryRun
	Opts Options
}

// Tuples iterates all tuple results across runs.
func (c *Corpus) Tuples() []*TupleResult {
	var out []*TupleResult
	for _, r := range c.Runs {
		out = append(out, r.Tuples...)
	}
	return out
}

// SuccessfulTuples returns the tuples with exact ground truth available and
// at least two provenance facts (the population used for the inexact-method
// comparisons).
func (c *Corpus) SuccessfulTuples() []*TupleResult {
	var out []*TupleResult
	for _, t := range c.Tuples() {
		if t.Success && t.NumFacts >= 2 {
			out = append(out, t)
		}
	}
	return out
}

// RunCorpus generates both databases and runs both query suites.
func RunCorpus(ctx context.Context, opts Options) (*Corpus, error) {
	c := &Corpus{Opts: opts}

	tpchDB := tpch.Generate(opts.TPCH)
	var tq []NamedQuery
	for _, q := range tpch.Queries() {
		tq = append(tq, NamedQuery{Name: q.Name, Q: q.Q})
	}
	runs, err := RunSuite(ctx, "TPC-H", tpchDB, tq, opts)
	if err != nil {
		return nil, err
	}
	c.Runs = append(c.Runs, runs...)

	imdbDB := imdb.Generate(opts.IMDB)
	var iq []NamedQuery
	for _, q := range imdb.Queries() {
		iq = append(iq, NamedQuery{Name: q.Name, Q: q.Q})
	}
	runs, err = RunSuite(ctx, "IMDB", imdbDB, iq, opts)
	if err != nil {
		return nil, err
	}
	c.Runs = append(c.Runs, runs...)
	return c, nil
}

// RunSuite evaluates every query of a suite over the database and runs the
// exact pipeline on every output tuple.
func RunSuite(ctx context.Context, dataset string, d *db.Database, queries []NamedQuery, opts Options) ([]*QueryRun, error) {
	endo := make([]db.FactID, 0, d.NumEndogenous())
	for _, f := range d.EndogenousFacts() {
		endo = append(endo, f.ID)
	}
	var cache *dnnf.CompileCache
	if opts.CacheSize > 0 {
		cache = dnnf.NewCompileCache(opts.CacheSize)
	}
	var out []*QueryRun
	for _, nq := range queries {
		run := &QueryRun{Dataset: dataset, Name: nq.Name, Q: nq.Q}
		cb := circuit.NewBuilder()
		t0 := time.Now()
		answers, err := engine.Eval(d, nq.Q, cb, engine.Options{Mode: engine.ModeEndogenous})
		run.ExecTime = time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", dataset, nq.Name, err)
		}
		if opts.MaxTuplesPerQuery > 0 && len(answers) > opts.MaxTuplesPerQuery {
			answers = answers[:opts.MaxTuplesPerQuery]
		}
		var before dnnf.CacheStats
		if cache != nil {
			before = cache.Stats()
		}
		for _, a := range answers {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			run.Tuples = append(run.Tuples, runTuple(ctx, dataset, nq.Name, a, endoForLineage(a.Lineage, endo), opts, cache))
		}
		if cache != nil {
			run.CacheStats = cache.Stats().Sub(before)
		}
		out = append(out, run)
	}
	return out, nil
}

// endoForLineage restricts the endogenous universe to the facts occurring
// in the lineage. The facts outside the lineage are null players whose
// Shapley value is identically zero; excluding them from the per-tuple
// universe matches the paper's per-output-tuple analysis ("the contribution
// of all relevant input facts") and keeps |Dn| per tuple equal to the
// number of distinct provenance facts.
func endoForLineage(lineage *circuit.Node, endo []db.FactID) []db.FactID {
	inLineage := make(map[db.FactID]bool)
	for _, v := range circuit.Vars(lineage) {
		inLineage[db.FactID(v)] = true
	}
	out := make([]db.FactID, 0, len(inLineage))
	for _, f := range endo {
		if inLineage[f] {
			out = append(out, f)
		}
	}
	return out
}

func runTuple(ctx context.Context, dataset, qname string, a engine.Answer, endo []db.FactID, opts Options, cache *dnnf.CompileCache) *TupleResult {
	tr := &TupleResult{
		Dataset:  dataset,
		Query:    qname,
		Tuple:    a.Tuple,
		ELin:     a.Lineage,
		Endo:     endo,
		NumFacts: len(circuit.Vars(a.Lineage)),
	}
	res, err := core.ExplainCircuit(ctx, a.Lineage, endo, core.PipelineOptions{
		CompileTimeout:   opts.Timeout,
		CompileMaxNodes:  opts.MaxNodes,
		ShapleyTimeout:   opts.Timeout,
		Workers:          opts.Workers,
		CompileWorkers:   opts.CompileWorkers,
		NoCanonicalCache: opts.NoCanonicalCache,
		Strategy:         opts.Strategy,
		Cache:            cache,
	})
	tr.CNF = res.CNF
	tr.NumClauses = res.NumClauses
	tr.KCTime = res.TseytinTime + res.CompileTime
	tr.ShapleyTime = res.ShapleyTime
	tr.DNNFSize = res.DNNFSize
	if opts.KeepDNNF {
		tr.DNNF = res.DNNF
	}
	if err != nil {
		tr.FailReason = err.Error()
		return tr
	}
	tr.Success = true
	tr.Values = res.Values
	return tr
}
