package bench

import (
	"context"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/tpch"
)

// RunScaling reproduces Figure 5: Algorithm 1 running time for
// representative TPC-H query outputs as a function of the lineitem table
// size. For each scale factor the database is regenerated (same seed, so
// smaller scales are prefixes in distribution), the named queries are
// evaluated, and the exact pipeline is timed on the first few output tuples
// of each query.
func RunScaling(ctx context.Context, base tpch.Config, scales []float64, queryNames []string,
	tuplesPerQuery int, opts core.PipelineOptions) ([]ScalingPoint, error) {

	wanted := make(map[string]bool, len(queryNames))
	for _, n := range queryNames {
		wanted[n] = true
	}
	var out []ScalingPoint
	for _, scale := range scales {
		cfg := base.Scaled(scale)
		d := tpch.Generate(cfg)
		lineitems := len(d.Relation("lineitem").Facts())
		endo := make([]db.FactID, 0, d.NumEndogenous())
		for _, f := range d.EndogenousFacts() {
			endo = append(endo, f.ID)
		}
		for _, nq := range tpch.Queries() {
			if !wanted[nq.Name] {
				continue
			}
			cb := circuit.NewBuilder()
			answers, err := engine.Eval(d, nq.Q, cb, engine.Options{Mode: engine.ModeEndogenous})
			if err != nil {
				return nil, err
			}
			if len(answers) > tuplesPerQuery {
				answers = answers[:tuplesPerQuery]
			}
			for _, a := range answers {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				tupleEndo := endoForLineage(a.Lineage, endo)
				t0 := time.Now()
				res, err := core.ExplainCircuit(ctx, a.Lineage, tupleEndo, opts)
				elapsed := time.Since(t0)
				p := ScalingPoint{
					Query:     nq.Name,
					Tuple:     a.Tuple.String(),
					Scale:     scale,
					Lineitems: lineitems,
					NumFacts:  len(circuit.Vars(a.Lineage)),
					Alg1Time:  elapsed,
					Success:   err == nil,
				}
				if err == nil {
					p.Alg1Time = res.ShapleyTime
				}
				out = append(out, p)
			}
		}
	}
	return out, nil
}
