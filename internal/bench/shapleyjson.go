package bench

// BENCH_shapley.json: a machine-readable record of the Shapley evaluation
// stage's performance, emitted by cmd/benchtables so the perf trajectory of
// the hot path (Algorithm 1) can be tracked across commits. The report has
// two parts: the per-tuple corpus measurements, and a head-to-head timing of
// the per-fact versus gradient strategies on the heaviest lineages of the
// corpus (the comparison the gradient rewrite targets).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
)

// ShapleyBenchTuple is one output tuple's measurement in the JSON report.
type ShapleyBenchTuple struct {
	Dataset       string  `json:"dataset"`
	Query         string  `json:"query"`
	Tuple         string  `json:"tuple"`
	NumFacts      int     `json:"num_facts"`
	NumClauses    int     `json:"num_clauses"`
	DNNFSize      int     `json:"dnnf_size"`
	KCMillis      float64 `json:"kc_ms"`
	ShapleyMillis float64 `json:"shapley_ms"`
	Success       bool    `json:"success"`
}

// StrategyComparison times both Algorithm 1 strategies on one reduced
// d-DNNF, after cross-checking that they produce identical values.
type StrategyComparison struct {
	Dataset        string  `json:"dataset"`
	Query          string  `json:"query"`
	NumFacts       int     `json:"num_facts"`
	DNNFSize       int     `json:"dnnf_size"`
	PerFactMillis  float64 `json:"per_fact_ms"`
	GradientMillis float64 `json:"gradient_ms"`
	Speedup        float64 `json:"speedup"`
}

// WorkerScalingPoint is one worker-count timing of Algorithm 1's per-fact
// fan-out on the heaviest retained lineage. On a multi-core runner the
// speedup column records the parallel scaling that a single-CPU development
// box cannot show.
type WorkerScalingPoint struct {
	Workers int     `json:"workers"`
	Millis  float64 `json:"ms"`
	Speedup float64 `json:"speedup"` // workers=1 time / this time
}

// ShapleyBench is the top-level BENCH_shapley.json document.
type ShapleyBench struct {
	GeneratedAt   string               `json:"generated_at"`
	MaxProcs      int                  `json:"maxprocs"`
	Strategy      string               `json:"strategy"`
	Tuples        []ShapleyBenchTuple  `json:"tuples"`
	HeadToHead    []StrategyComparison `json:"head_to_head"`
	WorkerScaling []WorkerScalingPoint `json:"worker_scaling"`
}

// ShapleyBenchReport builds the JSON report from a finished corpus run. It
// re-times both strategies on the headToHead largest successful lineages
// (serially, workers=1, so the numbers isolate the algorithmic difference)
// and verifies the two strategies agree exactly before reporting; it then
// times the per-fact fan-out on the heaviest lineage at 1, 2, and 4 workers
// (the worker-scaling record the single-CPU development box cannot produce).
// Both sections require the corpus to have been run with Options.KeepDNNF;
// tuples without a retained circuit are skipped.
func ShapleyBenchReport(ctx context.Context, c *Corpus, strategy core.ShapleyStrategy, headToHead int) (*ShapleyBench, error) {
	rep := &ShapleyBench{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		MaxProcs:    runtime.GOMAXPROCS(0),
		Strategy:    strategy.String(),
	}
	for _, t := range c.Tuples() {
		rep.Tuples = append(rep.Tuples, ShapleyBenchTuple{
			Dataset:       t.Dataset,
			Query:         t.Query,
			Tuple:         t.Tuple.String(),
			NumFacts:      t.NumFacts,
			NumClauses:    t.NumClauses,
			DNNFSize:      t.DNNFSize,
			KCMillis:      float64(t.KCTime) / float64(time.Millisecond),
			ShapleyMillis: float64(t.ShapleyTime) / float64(time.Millisecond),
			Success:       t.Success,
		})
	}

	candidates := c.SuccessfulTuples()
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].NumFacts != candidates[j].NumFacts {
			return candidates[i].NumFacts > candidates[j].NumFacts
		}
		return candidates[i].DNNFSize > candidates[j].DNNFSize
	})
	if headToHead > len(candidates) {
		headToHead = len(candidates)
	}
	for _, t := range candidates[:headToHead] {
		if t.DNNF == nil {
			continue
		}
		cmp, err := compareStrategies(ctx, t)
		if err != nil {
			return nil, err
		}
		rep.HeadToHead = append(rep.HeadToHead, *cmp)
	}

	for _, t := range candidates {
		if t.DNNF == nil {
			continue
		}
		scaling, err := workerScaling(ctx, t, []int{1, 2, 4})
		if err != nil {
			return nil, err
		}
		rep.WorkerScaling = scaling
		break
	}
	return rep, nil
}

// workerScaling times the per-fact strategy at the given worker counts on
// one tuple's reduced circuit, cross-checking that every configuration
// produces the workers=1 values exactly.
func workerScaling(ctx context.Context, t *TupleResult, workerCounts []int) ([]WorkerScalingPoint, error) {
	var points []WorkerScalingPoint
	var serial time.Duration
	var serialValues core.Values
	for _, w := range workerCounts {
		t0 := time.Now()
		values, err := core.ShapleyAllStrategy(ctx, t.DNNF, t.Endo, w, core.StrategyPerFact)
		if err != nil {
			return nil, fmt.Errorf("bench: worker scaling on %s/%s workers=%d: %w", t.Dataset, t.Query, w, err)
		}
		elapsed := time.Since(t0)
		if serialValues == nil {
			serial, serialValues = elapsed, values
		} else {
			for f, sv := range serialValues {
				if pv := values[f]; pv == nil || pv.Cmp(sv) != 0 {
					return nil, fmt.Errorf("bench: worker scaling on %s/%s workers=%d: fact %d diverges", t.Dataset, t.Query, w, f)
				}
			}
		}
		speedup := 0.0
		if elapsed > 0 {
			speedup = float64(serial) / float64(elapsed)
		}
		points = append(points, WorkerScalingPoint{
			Workers: w,
			Millis:  float64(elapsed) / float64(time.Millisecond),
			Speedup: speedup,
		})
	}
	return points, nil
}

func compareStrategies(ctx context.Context, t *TupleResult) (*StrategyComparison, error) {
	t0 := time.Now()
	perFact, err := core.ShapleyAllStrategy(ctx, t.DNNF, t.Endo, 1, core.StrategyPerFact)
	if err != nil {
		return nil, fmt.Errorf("bench: per-fact strategy on %s/%s: %w", t.Dataset, t.Query, err)
	}
	perFactTime := time.Since(t0)
	t1 := time.Now()
	gradient, err := core.ShapleyAllStrategy(ctx, t.DNNF, t.Endo, 1, core.StrategyGradient)
	if err != nil {
		return nil, fmt.Errorf("bench: gradient strategy on %s/%s: %w", t.Dataset, t.Query, err)
	}
	gradientTime := time.Since(t1)
	for f, pv := range perFact {
		if gv := gradient[f]; gv == nil || gv.Cmp(pv) != 0 {
			return nil, fmt.Errorf("bench: strategy mismatch on %s/%s fact %d: per-fact %v, gradient %v",
				t.Dataset, t.Query, f, pv, gradient[f])
		}
	}
	speedup := 0.0
	if gradientTime > 0 {
		speedup = float64(perFactTime) / float64(gradientTime)
	}
	return &StrategyComparison{
		Dataset:        t.Dataset,
		Query:          t.Query,
		NumFacts:       t.NumFacts,
		DNNFSize:       t.DNNFSize,
		PerFactMillis:  float64(perFactTime) / float64(time.Millisecond),
		GradientMillis: float64(gradientTime) / float64(time.Millisecond),
		Speedup:        speedup,
	}, nil
}

// WriteShapleyBench writes the report as indented JSON.
func WriteShapleyBench(path string, rep *ShapleyBench) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
