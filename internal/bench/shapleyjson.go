package bench

// BENCH_shapley.json: a machine-readable record of the Shapley evaluation
// stage's performance, emitted by cmd/benchtables so the perf trajectory of
// the hot path (Algorithm 1) can be tracked across commits. The report has
// two parts: the per-tuple corpus measurements, and a head-to-head timing of
// the per-fact versus gradient strategies on the heaviest lineages of the
// corpus (the comparison the gradient rewrite targets).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
)

// ShapleyBenchTuple is one output tuple's measurement in the JSON report.
type ShapleyBenchTuple struct {
	Dataset       string  `json:"dataset"`
	Query         string  `json:"query"`
	Tuple         string  `json:"tuple"`
	NumFacts      int     `json:"num_facts"`
	NumClauses    int     `json:"num_clauses"`
	DNNFSize      int     `json:"dnnf_size"`
	KCMillis      float64 `json:"kc_ms"`
	ShapleyMillis float64 `json:"shapley_ms"`
	Success       bool    `json:"success"`
}

// StrategyComparison times both Algorithm 1 strategies on one reduced
// d-DNNF, after cross-checking that they produce identical values.
type StrategyComparison struct {
	Dataset        string  `json:"dataset"`
	Query          string  `json:"query"`
	NumFacts       int     `json:"num_facts"`
	DNNFSize       int     `json:"dnnf_size"`
	PerFactMillis  float64 `json:"per_fact_ms"`
	GradientMillis float64 `json:"gradient_ms"`
	Speedup        float64 `json:"speedup"`
}

// ShapleyBench is the top-level BENCH_shapley.json document.
type ShapleyBench struct {
	GeneratedAt string               `json:"generated_at"`
	Strategy    string               `json:"strategy"`
	Tuples      []ShapleyBenchTuple  `json:"tuples"`
	HeadToHead  []StrategyComparison `json:"head_to_head"`
}

// ShapleyBenchReport builds the JSON report from a finished corpus run. It
// re-times both strategies on the headToHead largest successful lineages
// (serially, workers=1, so the numbers isolate the algorithmic difference)
// and verifies the two strategies agree exactly before reporting. The
// head-to-head section requires the corpus to have been run with
// Options.KeepDNNF; tuples without a retained circuit are skipped.
func ShapleyBenchReport(ctx context.Context, c *Corpus, strategy core.ShapleyStrategy, headToHead int) (*ShapleyBench, error) {
	rep := &ShapleyBench{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Strategy:    strategy.String(),
	}
	for _, t := range c.Tuples() {
		rep.Tuples = append(rep.Tuples, ShapleyBenchTuple{
			Dataset:       t.Dataset,
			Query:         t.Query,
			Tuple:         t.Tuple.String(),
			NumFacts:      t.NumFacts,
			NumClauses:    t.NumClauses,
			DNNFSize:      t.DNNFSize,
			KCMillis:      float64(t.KCTime) / float64(time.Millisecond),
			ShapleyMillis: float64(t.ShapleyTime) / float64(time.Millisecond),
			Success:       t.Success,
		})
	}

	candidates := c.SuccessfulTuples()
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].NumFacts != candidates[j].NumFacts {
			return candidates[i].NumFacts > candidates[j].NumFacts
		}
		return candidates[i].DNNFSize > candidates[j].DNNFSize
	})
	if headToHead > len(candidates) {
		headToHead = len(candidates)
	}
	for _, t := range candidates[:headToHead] {
		if t.DNNF == nil {
			continue
		}
		cmp, err := compareStrategies(ctx, t)
		if err != nil {
			return nil, err
		}
		rep.HeadToHead = append(rep.HeadToHead, *cmp)
	}
	return rep, nil
}

func compareStrategies(ctx context.Context, t *TupleResult) (*StrategyComparison, error) {
	t0 := time.Now()
	perFact, err := core.ShapleyAllStrategy(ctx, t.DNNF, t.Endo, 1, core.StrategyPerFact)
	if err != nil {
		return nil, fmt.Errorf("bench: per-fact strategy on %s/%s: %w", t.Dataset, t.Query, err)
	}
	perFactTime := time.Since(t0)
	t1 := time.Now()
	gradient, err := core.ShapleyAllStrategy(ctx, t.DNNF, t.Endo, 1, core.StrategyGradient)
	if err != nil {
		return nil, fmt.Errorf("bench: gradient strategy on %s/%s: %w", t.Dataset, t.Query, err)
	}
	gradientTime := time.Since(t1)
	for f, pv := range perFact {
		if gv := gradient[f]; gv == nil || gv.Cmp(pv) != 0 {
			return nil, fmt.Errorf("bench: strategy mismatch on %s/%s fact %d: per-fact %v, gradient %v",
				t.Dataset, t.Query, f, pv, gradient[f])
		}
	}
	speedup := 0.0
	if gradientTime > 0 {
		speedup = float64(perFactTime) / float64(gradientTime)
	}
	return &StrategyComparison{
		Dataset:        t.Dataset,
		Query:          t.Query,
		NumFacts:       t.NumFacts,
		DNNFSize:       t.DNNFSize,
		PerFactMillis:  float64(perFactTime) / float64(time.Millisecond),
		GradientMillis: float64(gradientTime) / float64(time.Millisecond),
		Speedup:        speedup,
	}, nil
}

// WriteShapleyBench writes the report as indented JSON.
func WriteShapleyBench(path string, rep *ShapleyBench) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
