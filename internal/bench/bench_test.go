package bench

import (
	"context"
	"math/big"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/imdb"
	"repro/internal/tpch"
)

// smallOptions keeps harness tests fast.
func smallOptions() Options {
	o := DefaultOptions()
	o.TPCH = tpch.Config{Customers: 8, OrdersPerCustomer: 2, LinesPerOrder: 3, Parts: 12, Suppliers: 5, Seed: 42}
	o.IMDB = imdb.Config{Movies: 15, People: 20, Companies: 6, Keywords: 10, CastPerMovie: 3, Seed: 7}
	o.Timeout = 2 * time.Second
	o.MaxTuplesPerQuery = 30
	return o
}

var (
	corpusOnce sync.Once
	corpusVal  *Corpus
	corpusErr  error
)

// runSmallCorpus shares one corpus run across the harness tests; the run is
// deterministic and read-only afterwards.
func runSmallCorpus(t *testing.T) *Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		corpusVal, corpusErr = RunCorpus(context.Background(), smallOptions())
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpusVal
}

func TestRunCorpusProducesAllQueries(t *testing.T) {
	c := runSmallCorpus(t)
	if len(c.Runs) != len(tpch.Queries())+len(imdb.Queries()) {
		t.Fatalf("runs = %d, want %d", len(c.Runs), len(tpch.Queries())+len(imdb.Queries()))
	}
	totalTuples := 0
	success := 0
	for _, r := range c.Runs {
		totalTuples += len(r.Tuples)
		for _, tr := range r.Tuples {
			if tr.Success {
				success++
				if tr.Values == nil {
					t.Fatalf("%s/%s: success without values", tr.Dataset, tr.Query)
				}
				// Efficiency axiom sanity: for monotone SPJU lineage with a
				// non-empty derivation, Σ Shapley = 1.
				if tr.NumFacts > 0 && tr.Values.Sum().Cmp(big.NewRat(1, 1)) != 0 {
					t.Errorf("%s/%s %v: Σ Shapley = %v, want 1",
						tr.Dataset, tr.Query, tr.Tuple, tr.Values.Sum())
				}
			}
		}
	}
	if totalTuples == 0 {
		t.Fatal("corpus produced no output tuples; generator or queries broken")
	}
	if success == 0 {
		t.Fatal("no tuple succeeded exactly")
	}
	t.Logf("corpus: %d tuples, %d exact successes", totalTuples, success)
}

func TestTable1Renders(t *testing.T) {
	c := runSmallCorpus(t)
	out := Table1(c)
	for _, want := range []string{"TPC-H", "IMDB", "q3", "8d", "Success"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestCompareInexactAndTable2(t *testing.T) {
	c := runSmallCorpus(t)
	recs := CompareInexact(c, []int{10, 20}, 99)
	if len(recs) == 0 {
		t.Fatal("no comparison records")
	}
	// Every successful multi-fact tuple yields 2 methods × 2 budgets + 1
	// proxy record.
	want := len(c.SuccessfulTuples()) * 5
	if len(recs) != want {
		t.Fatalf("records = %d, want %d", len(recs), want)
	}
	table := Table2(recs, 20)
	for _, wantStr := range []string{"Monte Carlo", "Kernel SHAP", "CNF Proxy", "nDCG", "Precision@10"} {
		if !strings.Contains(table, wantStr) {
			t.Errorf("Table 2 missing %q:\n%s", wantStr, table)
		}
	}
	// Proxy must be fast: median under 50 ms at this scale.
	px := FilterRecords(recs, MethodProxy, 0)
	for _, r := range px {
		if r.Seconds > 0.5 {
			t.Errorf("proxy took %v s on %s/%s — far slower than expected", r.Seconds, r.Dataset, r.Query)
		}
	}
}

func TestFigure4Renders(t *testing.T) {
	c := runSmallCorpus(t)
	out := Figure4(c)
	for _, want := range []string{"#facts", "#CNF clauses", "d-DNNF size", "KC p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 4 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6And7Render(t *testing.T) {
	c := runSmallCorpus(t)
	recs := CompareInexact(c, []int{10, 20}, 7)
	f6 := Figure6(recs, []int{10, 20})
	if !strings.Contains(f6, MethodProxy) || !strings.Contains(f6, "nDCG") {
		t.Errorf("Figure 6 malformed:\n%s", f6)
	}
	f7 := Figure7(recs, 20)
	if !strings.Contains(f7, "#facts bin") {
		t.Errorf("Figure 7 malformed:\n%s", f7)
	}
}

func TestFigure8Monotone(t *testing.T) {
	c := runSmallCorpus(t)
	timeouts := []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, 2 * time.Second}
	points := Figure8(c, timeouts)
	if len(points) != len(timeouts) {
		t.Fatalf("points = %d, want %d", len(points), len(timeouts))
	}
	// Success rate must be non-decreasing in the timeout, per dataset.
	for ds := range points[0].SuccessRate {
		for i := 1; i < len(points); i++ {
			if points[i].SuccessRate[ds]+1e-12 < points[i-1].SuccessRate[ds] {
				t.Errorf("%s: success rate decreased from %v to %v at timeout %v",
					ds, points[i-1].SuccessRate[ds], points[i].SuccessRate[ds], points[i].Timeout)
			}
		}
	}
	out := RenderFigure8(points)
	if !strings.Contains(out, "Timeout") {
		t.Errorf("Figure 8 malformed:\n%s", out)
	}
}

func TestRunScaling(t *testing.T) {
	base := tpch.Config{Customers: 8, OrdersPerCustomer: 2, LinesPerOrder: 3, Parts: 12, Suppliers: 5, Seed: 42}
	points, err := RunScaling(context.Background(), base, []float64{0.5, 1.0}, []string{"q10", "q18"}, 2,
		core.PipelineOptions{CompileTimeout: 2 * time.Second, ShapleyTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no scaling points")
	}
	out := RenderScaling(points)
	if !strings.Contains(out, "q10") && !strings.Contains(out, "q18") {
		t.Errorf("scaling report missing queries:\n%s", out)
	}
}

func TestCompileBenchReport(t *testing.T) {
	c := runSmallCorpus(t)
	rep, err := CompileBenchReport(context.Background(), c, []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instances) < 2 {
		t.Fatalf("instances = %d, want at least the synthetic pair", len(rep.Instances))
	}
	sawMultiComponent := false
	for _, inst := range rep.Instances {
		if inst.Components >= 4 {
			sawMultiComponent = true
		}
		if inst.SerialMillis <= 0 {
			t.Errorf("%s: non-positive serial time", inst.Name)
		}
		for _, p := range inst.Parallel {
			if p.Workers <= 1 || p.Millis <= 0 {
				t.Errorf("%s: malformed parallel timing %+v", inst.Name, p)
			}
		}
	}
	if !sawMultiComponent {
		t.Error("no instance with ≥ 4 top-level components — the parallel head-to-head has nothing to fan out")
	}
	if len(rep.Canonical) != 2 || len(rep.ByteIdentical) != 2 {
		t.Fatalf("cache passes = %d canonical / %d byte-identical, want 2/2", len(rep.Canonical), len(rep.ByteIdentical))
	}
	// The permuted pass over renamed-isomorphic corpus CNFs is exactly what
	// canonical keying exists for: it must hit, and the byte-identical
	// control must miss.
	if p := rep.Canonical[1]; p.RenamedHits == 0 {
		t.Errorf("canonical permuted pass: no renamed hits (%+v)", p)
	}
	if p := rep.ByteIdentical[1]; p.IdenticalHits+p.RenamedHits != 0 {
		t.Errorf("byte-identical permuted pass unexpectedly hit (%+v)", p)
	}
}

func TestSyntheticComponentCNF(t *testing.T) {
	f := SyntheticComponentCNF(4, 6, 10, 3)
	if got := len(f.Clauses); got != 40 {
		t.Fatalf("clauses = %d, want 40", got)
	}
	if f.MaxVar != 24 {
		t.Fatalf("MaxVar = %d, want 24", f.MaxVar)
	}
	// Deterministic in the seed.
	g := SyntheticComponentCNF(4, 6, 10, 3)
	for i := range f.Clauses {
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatal("SyntheticComponentCNF is not deterministic")
			}
		}
	}
}

func TestBinLabels(t *testing.T) {
	cases := map[int]string{1: "1-10", 10: "1-10", 11: "11-25", 200: "101-200", 399: "201-400"}
	for v, want := range cases {
		if got := binLabel(v); got != want {
			t.Errorf("binLabel(%d) = %q, want %q", v, got, want)
		}
	}
}
