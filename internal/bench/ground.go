package bench

// BENCH_ground.json: grounding-stage performance, emitted by
// cmd/groundbench so the evaluation layer's trajectory is tracked across
// commits the same way BENCH_shapley.json tracks Algorithm 1. Each point
// times one (scale, backend, engine) cell of the matrix — the streaming
// iterator pipeline versus the materialized reference evaluator, on the
// in-memory and sorted storage backends — over the full TPC-H query set,
// recording wall clock, grounding throughput in facts/sec, and the
// allocation footprint (the streaming engine's reason to exist: it never
// materializes intermediate binding tables). The comparisons section
// reduces each (scale, backend) pair to the two headline ratios.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/circuit"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/tpch"
)

// Engine labels for GroundPoint.Engine.
const (
	EngineStreaming    = "streaming"
	EngineMaterialized = "materialized"
)

// GroundPoint is one timed cell of the grounding matrix.
type GroundPoint struct {
	Scale   float64 `json:"scale"`
	Backend string  `json:"backend"`
	Engine  string  `json:"engine"`
	// Facts is the database size; Queries the number of UCQs grounded over
	// it; Answers the total output tuples across them.
	Facts   int `json:"facts"`
	Queries int `json:"queries"`
	Answers int `json:"answers"`
	// Millis is the wall clock for grounding all queries; FactsPerSec the
	// grounding throughput (facts × queries per second).
	Millis      float64 `json:"ms"`
	FactsPerSec float64 `json:"facts_per_sec"`
	// AllocBytes is the heap allocated during grounding (TotalAlloc delta
	// around the run) — the proxy for the peak working set a fully
	// materialized evaluation drags in.
	AllocBytes uint64 `json:"alloc_bytes"`
}

// GroundComparison reduces one (scale, backend) pair to the streaming
// engine's headline ratios against the materialized baseline.
type GroundComparison struct {
	Scale   float64 `json:"scale"`
	Backend string  `json:"backend"`
	// SpeedupX is materialized time / streaming time (> 1 = streaming
	// faster); AllocReduction is the fraction of the materialized
	// engine's allocations the streaming engine avoids (0.5 = half).
	SpeedupX       float64 `json:"speedup_x"`
	AllocReduction float64 `json:"alloc_reduction"`
}

// GroundBench is the top-level BENCH_ground.json document.
type GroundBench struct {
	GeneratedAt string             `json:"generated_at"`
	MaxProcs    int                `json:"maxprocs"`
	Dataset     string             `json:"dataset"`
	Points      []GroundPoint      `json:"points"`
	Comparisons []GroundComparison `json:"comparisons"`
}

// RunGroundBench times the grounding matrix on TPC-H: for every scale it
// generates the dataset once, migrates it onto each backend, and grounds
// every TPC-H query with both engines. The two engines' answer sets are
// always cross-checked (tuples, order, and lineage variable sets must be
// identical — the streaming rewrite's correctness bar); any divergence is
// an error, not a skewed number.
func RunGroundBench(ctx context.Context, scales []float64, backends []string) (*GroundBench, error) {
	rep := &GroundBench{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		MaxProcs:    runtime.GOMAXPROCS(0),
		Dataset:     "tpch",
	}
	queries := tpch.Queries()
	for _, scale := range scales {
		base := tpch.Generate(tpch.DefaultConfig().Scaled(scale))
		for _, backend := range backends {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			d := base
			if backend != db.BackendMemory {
				md, err := base.Migrate(backend, "")
				if err != nil {
					return nil, err
				}
				d = md
			}
			var sigs [2][]string
			var pts [2]GroundPoint
			for i, eng := range []string{EngineStreaming, EngineMaterialized} {
				pt, sig, err := groundOnce(ctx, d, queries, scale, backend, eng)
				if err != nil {
					return nil, err
				}
				pts[i], sigs[i] = *pt, sig
			}
			if err := sameAnswers(sigs[0], sigs[1]); err != nil {
				return nil, fmt.Errorf("bench: scale %g backend %s: %w", scale, backend, err)
			}
			rep.Points = append(rep.Points, pts[0], pts[1])
			cmp := GroundComparison{Scale: scale, Backend: backend}
			if pts[0].Millis > 0 {
				cmp.SpeedupX = pts[1].Millis / pts[0].Millis
			}
			if pts[1].AllocBytes > 0 {
				cmp.AllocReduction = 1 - float64(pts[0].AllocBytes)/float64(pts[1].AllocBytes)
			}
			rep.Comparisons = append(rep.Comparisons, cmp)
		}
	}
	return rep, nil
}

// groundOnce grounds every query with one engine, returning the timed point
// and the answer signature (tuple key plus sorted lineage variables, per
// answer, per query) used to cross-check engines.
func groundOnce(ctx context.Context, d *db.Database, queries []tpch.BenchQuery,
	scale float64, backend, eng string) (*GroundPoint, []string, error) {

	eval := engine.Eval
	if eng == EngineMaterialized {
		eval = engine.EvalMaterialized
	}
	var sig []string
	answers := 0

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for _, nq := range queries {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		cb := circuit.NewBuilder()
		as, err := eval(d, nq.Q, cb, engine.Options{Mode: engine.ModeEndogenous})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s on %s/%s: %w", eng, backend, nq.Name, err)
		}
		answers += len(as)
		for _, a := range as {
			vars := circuit.Vars(a.Lineage)
			sig = append(sig, fmt.Sprintf("%s|%s|%v", nq.Name, a.Tuple.Key(), vars))
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)

	pt := &GroundPoint{
		Scale:      scale,
		Backend:    backend,
		Engine:     eng,
		Facts:      d.NumFacts(),
		Queries:    len(queries),
		Answers:    answers,
		Millis:     float64(elapsed) / float64(time.Millisecond),
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}
	if s := elapsed.Seconds(); s > 0 {
		pt.FactsPerSec = float64(d.NumFacts()*len(queries)) / s
	}
	return pt, sig, nil
}

// sameAnswers checks two engines' answer signatures element-for-element.
func sameAnswers(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("engines disagree: %d vs %d answers", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("engines disagree at answer %d: %s vs %s", i, a[i], b[i])
		}
	}
	return nil
}

// WriteGroundBench writes the report as indented JSON.
func WriteGroundBench(path string, rep *GroundBench) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
