package bench

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/sampling"
)

// Method names used in comparison records.
const (
	MethodMonteCarlo = "MonteCarlo"
	MethodKernelSHAP = "KernelSHAP"
	MethodProxy      = "CNFProxy"
)

// InexactRecord is one (output tuple × method × budget) measurement of the
// Section 6.2 comparison.
type InexactRecord struct {
	Dataset  string
	Query    string
	NumFacts int
	Method   string
	// BudgetPerFact is the sampling budget divided by the number of facts
	// (the paper's m = r·n parameterization); 0 for CNF Proxy, which does
	// not sample.
	BudgetPerFact int

	Seconds float64
	L1      float64
	L2      float64
	NDCG    float64
	P5      float64
	P10     float64
}

// CompareInexact runs Monte Carlo and Kernel SHAP at each per-fact budget,
// and CNF Proxy once, over every tuple with exact ground truth, recording
// execution time and the quality metrics of Section 6.2 against the exact
// Shapley values.
func CompareInexact(c *Corpus, budgetsPerFact []int, seed int64) []InexactRecord {
	rng := rand.New(rand.NewSource(seed))
	var out []InexactRecord
	for _, t := range c.SuccessfulTuples() {
		truth := restrictTruth(t)
		game := sampling.NewGame(t.ELin)

		for _, b := range budgetsPerFact {
			budget := b * game.NumPlayers()

			t0 := time.Now()
			mc := sampling.MonteCarlo(game, budget, rng)
			mcTime := time.Since(t0)
			out = append(out, record(t, MethodMonteCarlo, b, mcTime, mc, truth))

			t0 = time.Now()
			ks := sampling.KernelSHAP(game, budget, rng)
			ksTime := time.Since(t0)
			out = append(out, record(t, MethodKernelSHAP, b, ksTime, ks, truth))
		}

		t0 := time.Now()
		proxy := core.CNFProxy(t.CNF, t.Endo).Float()
		proxyTime := time.Since(t0)
		out = append(out, record(t, MethodProxy, 0, proxyTime, proxy, truth))
	}
	return out
}

// restrictTruth returns the exact values over the facts that occur in the
// tuple's provenance (the players of the comparison).
func restrictTruth(t *TupleResult) map[db.FactID]float64 {
	truth := make(map[db.FactID]float64, len(t.Endo))
	all := t.Values.Float()
	for _, f := range t.Endo {
		truth[f] = all[f]
	}
	return truth
}

func record(t *TupleResult, method string, budget int, d time.Duration,
	scores, truth map[db.FactID]float64) InexactRecord {

	// Methods may omit null players; fill zeros so the metrics see the full
	// universe.
	full := make(map[db.FactID]float64, len(truth))
	for f := range truth {
		full[f] = scores[f]
	}
	ranking := metrics.RankByScore(full)
	return InexactRecord{
		Dataset:       t.Dataset,
		Query:         t.Query,
		NumFacts:      t.NumFacts,
		Method:        method,
		BudgetPerFact: budget,
		Seconds:       d.Seconds(),
		L1:            metrics.L1(full, truth),
		L2:            metrics.L2(full, truth),
		NDCG:          metrics.NDCG(ranking, truth),
		P5:            metrics.PrecisionAt(ranking, truth, 5),
		P10:           metrics.PrecisionAt(ranking, truth, 10),
	}
}

// FilterRecords selects records matching method and budget (budget < 0
// matches any).
func FilterRecords(recs []InexactRecord, method string, budget int) []InexactRecord {
	var out []InexactRecord
	for _, r := range recs {
		if r.Method == method && (budget < 0 || r.BudgetPerFact == budget) {
			out = append(out, r)
		}
	}
	return out
}

// Column extractors used by the report renderers.
func seconds(rs []InexactRecord) []float64 {
	return extract(rs, func(r InexactRecord) float64 { return r.Seconds })
}
func l1s(rs []InexactRecord) []float64 {
	return extract(rs, func(r InexactRecord) float64 { return r.L1 })
}
func l2s(rs []InexactRecord) []float64 {
	return extract(rs, func(r InexactRecord) float64 { return r.L2 })
}
func ndcgs(rs []InexactRecord) []float64 {
	return extract(rs, func(r InexactRecord) float64 { return r.NDCG })
}
func p5s(rs []InexactRecord) []float64 {
	return extract(rs, func(r InexactRecord) float64 { return r.P5 })
}
func p10s(rs []InexactRecord) []float64 {
	return extract(rs, func(r InexactRecord) float64 { return r.P10 })
}

func extract(rs []InexactRecord, f func(InexactRecord) float64) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = f(r)
	}
	return out
}
