package bench

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Table1 renders the per-query exact-computation statistics of Table 1:
// joined tables, filter conditions, provenance-generation time, output
// count, success rate, and KC / Algorithm 1 time percentiles.
func Table1(c *Corpus) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Dataset\tQuery\t#Joined\t#Filters\tExec[s]\t#Tuples\tSuccess\tKC mean\tKC p50\tKC p99\tAlg1 mean\tAlg1 p50\tAlg1 p99")
	for _, r := range c.Runs {
		var kc, alg []float64
		for _, t := range r.Tuples {
			if t.Success {
				kc = append(kc, t.KCTime.Seconds())
				alg = append(alg, t.ShapleyTime.Seconds())
			}
		}
		ks, as := metrics.Summarize(kc), metrics.Summarize(alg)
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.3f\t%d\t%.1f%%\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			r.Dataset, r.Name, r.Q.NumAtoms(), r.Q.NumFilters(),
			r.ExecTime.Seconds(), len(r.Tuples), 100*r.SuccessRate(),
			ks.Mean, ks.P50, ks.P99, as.Mean, as.P50, as.P99)
	}
	w.Flush()
	return sb.String()
}

// Table2 renders the median (mean) comparison of the inexact methods at the
// largest sampling budget, mirroring Table 2's rows: execution time, L1,
// L2, nDCG, Precision@5, Precision@10.
func Table2(recs []InexactRecord, budgetPerFact int) string {
	mc := FilterRecords(recs, MethodMonteCarlo, budgetPerFact)
	ks := FilterRecords(recs, MethodKernelSHAP, budgetPerFact)
	px := FilterRecords(recs, MethodProxy, 0)

	row := func(name string, f func([]InexactRecord) []float64) string {
		cell := func(rs []InexactRecord) string {
			xs := f(rs)
			return fmt.Sprintf("%.4g (%.4g)", metrics.Median(xs), metrics.Mean(xs))
		}
		return fmt.Sprintf("%s\t%s\t%s\t%s\n", name, cell(mc), cell(ks), cell(px))
	}

	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Metric\tMonte Carlo\tKernel SHAP\tCNF Proxy\n")
	fmt.Fprintf(w, "(budget %d·#facts; median (mean))\t\t\t\n", budgetPerFact)
	fmt.Fprint(w, row("Execution time [s]", seconds))
	fmt.Fprint(w, row("L1", l1s))
	fmt.Fprint(w, row("L2", l2s))
	fmt.Fprint(w, row("nDCG", ndcgs))
	fmt.Fprint(w, row("Precision@5", p5s))
	fmt.Fprint(w, row("Precision@10", p10s))
	w.Flush()
	return sb.String()
}

// Figure4 renders the knowledge-compilation and Algorithm 1 running times
// binned by provenance features — the six panels of Figure 4 as binned
// series (median seconds per bin).
func Figure4(c *Corpus) string {
	type axis struct {
		title string
		value func(*TupleResult) int
	}
	axes := []axis{
		{"#facts", func(t *TupleResult) int { return t.NumFacts }},
		{"#CNF clauses", func(t *TupleResult) int { return t.NumClauses }},
		{"d-DNNF size", func(t *TupleResult) int { return t.DNNFSize }},
	}
	var sb strings.Builder
	for _, ax := range axes {
		bins := map[string][]*TupleResult{}
		var keys []string
		for _, t := range c.Tuples() {
			if !t.Success {
				continue
			}
			k := binLabel(ax.value(t))
			if _, ok := bins[k]; !ok {
				keys = append(keys, k)
			}
			bins[k] = append(bins[k], t)
		}
		sort.Slice(keys, func(i, j int) bool { return binOrder(keys[i]) < binOrder(keys[j]) })
		fmt.Fprintf(&sb, "Figure 4: time vs %s\n", ax.title)
		w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "bin\tn\tKC p50 [s]\tAlg1 p50 [s]")
		for _, k := range keys {
			var kc, alg []float64
			for _, t := range bins[k] {
				kc = append(kc, t.KCTime.Seconds())
				alg = append(alg, t.ShapleyTime.Seconds())
			}
			fmt.Fprintf(w, "%s\t%d\t%.5f\t%.5f\n", k, len(bins[k]),
				metrics.Median(kc), metrics.Median(alg))
		}
		w.Flush()
		sb.WriteString("\n")
	}
	return sb.String()
}

var binBounds = []int{10, 25, 50, 100, 200, 400, 1000, 10000, 100000}

func binLabel(v int) string {
	lo := 1
	for _, hi := range binBounds {
		if v <= hi {
			return fmt.Sprintf("%d-%d", lo, hi)
		}
		lo = hi + 1
	}
	return fmt.Sprintf(">%d", binBounds[len(binBounds)-1])
}

func binOrder(label string) int {
	var lo int
	fmt.Sscanf(strings.TrimPrefix(label, ">"), "%d", &lo)
	return lo
}

// Figure6 renders the inexact-method metrics as a function of the sampling
// budget (panels a–c: execution time, nDCG, Precision@10). CNF Proxy has no
// budget and appears as a constant reference row.
func Figure6(recs []InexactRecord, budgets []int) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Method\tBudget/fact\ttime p50 [s]\tnDCG p50\tP@10 p50")
	for _, m := range []string{MethodMonteCarlo, MethodKernelSHAP} {
		for _, b := range budgets {
			rs := FilterRecords(recs, m, b)
			fmt.Fprintf(w, "%s\t%d\t%.5f\t%.4f\t%.4f\n", m, b,
				metrics.Median(seconds(rs)), metrics.Median(ndcgs(rs)), metrics.Median(p10s(rs)))
		}
	}
	px := FilterRecords(recs, MethodProxy, 0)
	fmt.Fprintf(w, "%s\t-\t%.5f\t%.4f\t%.4f\n", MethodProxy,
		metrics.Median(seconds(px)), metrics.Median(ndcgs(px)), metrics.Median(p10s(px)))
	w.Flush()
	return sb.String()
}

// Figure7 renders the distribution (median) and worst case of time, nDCG,
// and Precision@10 per provenance-size bucket, at a fixed 20·n budget for
// the sampling methods (panels a–f).
func Figure7(recs []InexactRecord, budgetPerFact int) string {
	sets := map[string][]InexactRecord{
		MethodMonteCarlo: FilterRecords(recs, MethodMonteCarlo, budgetPerFact),
		MethodKernelSHAP: FilterRecords(recs, MethodKernelSHAP, budgetPerFact),
		MethodProxy:      FilterRecords(recs, MethodProxy, 0),
	}
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Method\t#facts bin\tn\ttime p50\ttime max\tnDCG p50\tnDCG min\tP@10 p50\tP@10 min")
	for _, m := range []string{MethodMonteCarlo, MethodKernelSHAP, MethodProxy} {
		bins := map[string][]InexactRecord{}
		var keys []string
		for _, r := range sets[m] {
			k := binLabel(r.NumFacts)
			if _, ok := bins[k]; !ok {
				keys = append(keys, k)
			}
			bins[k] = append(bins[k], r)
		}
		sort.Slice(keys, func(i, j int) bool { return binOrder(keys[i]) < binOrder(keys[j]) })
		for _, k := range keys {
			rs := bins[k]
			fmt.Fprintf(w, "%s\t%s\t%d\t%.5f\t%.5f\t%.4f\t%.4f\t%.4f\t%.4f\n",
				m, k, len(rs),
				metrics.Median(seconds(rs)), maxOf(seconds(rs)),
				metrics.Median(ndcgs(rs)), minOf(ndcgs(rs)),
				metrics.Median(p10s(rs)), minOf(p10s(rs)))
		}
	}
	w.Flush()
	return sb.String()
}

func maxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// HybridPoint is one timeout setting of Figure 8.
type HybridPoint struct {
	Timeout     time.Duration
	SuccessRate map[string]float64 // per dataset
	MeanTime    map[string]float64 // per dataset, seconds
}

// Figure8 derives the hybrid strategy's success rate (panel a) and mean
// execution time (panel b) for each timeout from the recorded per-tuple
// exact costs: a tuple counts as an exact success at timeout t if its exact
// pipeline succeeded within t; otherwise the hybrid pays t plus the CNF
// Proxy cost.
func Figure8(c *Corpus, timeouts []time.Duration) []HybridPoint {
	// Measure proxy cost once per tuple.
	proxyCost := make(map[*TupleResult]float64)
	for _, t := range c.Tuples() {
		if t.CNF == nil {
			continue
		}
		t0 := time.Now()
		core.CNFProxy(t.CNF, t.Endo)
		proxyCost[t] = time.Since(t0).Seconds()
	}
	var out []HybridPoint
	for _, timeout := range timeouts {
		p := HybridPoint{
			Timeout:     timeout,
			SuccessRate: map[string]float64{},
			MeanTime:    map[string]float64{},
		}
		sums := map[string]float64{}
		hits := map[string]int{}
		counts := map[string]int{}
		for _, t := range c.Tuples() {
			counts[t.Dataset]++
			exact := t.ExactTotal().Seconds()
			if t.Success && exact <= timeout.Seconds() {
				hits[t.Dataset]++
				sums[t.Dataset] += exact
			} else {
				sums[t.Dataset] += timeout.Seconds() + proxyCost[t]
			}
		}
		for ds, n := range counts {
			p.SuccessRate[ds] = float64(hits[ds]) / float64(n)
			p.MeanTime[ds] = sums[ds] / float64(n)
		}
		out = append(out, p)
	}
	return out
}

// RenderFigure8 formats the hybrid sweep as text.
func RenderFigure8(points []HybridPoint) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Timeout\tDataset\tSuccess\tMean hybrid time [s]")
	for _, p := range points {
		var datasets []string
		for ds := range p.SuccessRate {
			datasets = append(datasets, ds)
		}
		sort.Strings(datasets)
		for _, ds := range datasets {
			fmt.Fprintf(w, "%v\t%s\t%.2f%%\t%.4f\n", p.Timeout, ds,
				100*p.SuccessRate[ds], p.MeanTime[ds])
		}
	}
	w.Flush()
	return sb.String()
}

// ScalingPoint is one (query output, scale) measurement of Figure 5.
type ScalingPoint struct {
	Query     string
	Tuple     string
	Scale     float64
	Lineitems int
	NumFacts  int
	Alg1Time  time.Duration
	Success   bool
}

// RenderScaling formats the Figure 5 sweep.
func RenderScaling(points []ScalingPoint) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Query\tOutput\tScale\t#lineitems\t#facts\tAlg1 [s]\tOK")
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%d\t%d\t%.5f\t%v\n",
			p.Query, p.Tuple, p.Scale, p.Lineitems, p.NumFacts,
			p.Alg1Time.Seconds(), p.Success)
	}
	w.Flush()
	return sb.String()
}
