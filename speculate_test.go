package repro

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/flights"
)

// TestExplainSpeculativeMatchesBaseline is the end-to-end property for the
// speculative/portfolio compiler knobs: across the flights example and a
// random multi-answer join, every (Speculate, Portfolio, Workers) combination
// must produce explanations big.Rat-identical to the serial, cache-disabled
// baseline. Run under -race in CI this also exercises the concurrent branch
// and racer bookkeeping through the full pipeline.
func TestExplainSpeculativeMatchesBaseline(t *testing.T) {
	type instance struct {
		name string
		d    *Database
		q    *Query
	}
	fd, _ := flights.Build()
	rd := NewDatabase()
	rd.CreateRelation("R", "a", "b")
	rd.CreateRelation("S", "b", "c")
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 18; i++ {
		rd.MustInsert("R", true, Int(int64(i%6)), Int(int64(rng.Intn(4))))
	}
	for i := 0; i < 12; i++ {
		rd.MustInsert("S", true, Int(int64(rng.Intn(4))), Int(int64(rng.Intn(3))))
	}
	rq, err := ParseQuery(`q(a) :- R(a, b), S(b, c)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range []instance{
		{"flights", fd, flights.Query()},
		{"random-join", rd, rq},
	} {
		baseline, err := Explain(context.Background(), inst.d, inst.q, Options{Workers: 1, CompileWorkers: 1, CacheSize: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			for _, knobs := range []Options{
				{Speculate: true},
				{Portfolio: true},
				{Speculate: true, Portfolio: true},
			} {
				opts := knobs
				opts.Workers = workers
				opts.CompileWorkers = -1 // GOMAXPROCS: give speculation room
				opts.CacheSize = -1
				got, err := Explain(context.Background(), inst.d, inst.q, opts)
				if err != nil {
					t.Fatalf("%s %+v: %v", inst.name, opts, err)
				}
				if len(got) != len(baseline) {
					t.Fatalf("%s %+v: %d explanations, want %d", inst.name, opts, len(got), len(baseline))
				}
				for i := range baseline {
					b, g := baseline[i], got[i]
					if b.Tuple.String() != g.Tuple.String() || b.Method != g.Method {
						t.Fatalf("%s %+v answer %d: tuple/method diverged", inst.name, opts, i)
					}
					if len(b.Values) != len(g.Values) {
						t.Fatalf("%s %+v answer %d: value counts diverged", inst.name, opts, i)
					}
					for f, bv := range b.Values {
						if gv := g.Values[f]; gv == nil || gv.Cmp(bv) != 0 {
							t.Fatalf("%s %+v answer %d fact %d: %v, want %v", inst.name, opts, i, f, gv, bv)
						}
					}
				}
			}
		}
	}
}

// TestExplainSpeculativeCancelledContext pins that caller cancellation with
// the speculative/portfolio knobs on is an error, not a fallback answer.
func TestExplainSpeculativeCancelledContext(t *testing.T) {
	d, _ := flights.Build()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Speculate: true, Portfolio: true, Workers: 4, CompileWorkers: -1}
	if _, err := Explain(ctx, d, flights.Query(), opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
