package repro

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus ablation benches for the design choices called out in DESIGN.md.
// Each benchmark regenerates the corresponding artifact; run
//
//	go test -bench=. -benchmem
//
// or use cmd/benchtables for a human-readable report of every artifact.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/dnnf"
	"repro/internal/engine"
	"repro/internal/flights"
	"repro/internal/imdb"
	"repro/internal/sampling"
	"repro/internal/tpch"
)

// benchCorpus is shared by the table/figure benchmarks: running the exact
// pipeline over the whole corpus is itself the measured operation in
// BenchmarkTable1, while the comparison benchmarks reuse its artifacts.
var (
	corpusOnce sync.Once
	corpusVal  *bench.Corpus
	corpusErr  error
)

func benchOptions() bench.Options {
	o := bench.DefaultOptions()
	o.TPCH = tpch.Config{Customers: 15, OrdersPerCustomer: 2, LinesPerOrder: 3, Parts: 20, Suppliers: 8, Seed: 42}
	o.IMDB = imdb.Config{Movies: 30, People: 40, Companies: 10, Keywords: 15, CastPerMovie: 3, Seed: 7}
	o.Timeout = 2 * time.Second
	o.MaxTuplesPerQuery = 40
	return o
}

func benchCorpus(b *testing.B) *bench.Corpus {
	b.Helper()
	corpusOnce.Do(func() {
		corpusVal, corpusErr = bench.RunCorpus(context.Background(), benchOptions())
	})
	if corpusErr != nil {
		b.Fatal(corpusErr)
	}
	return corpusVal
}

// BenchmarkTable1 regenerates Table 1: the exact pipeline (provenance →
// Tseytin → knowledge compilation → Lemma 4.6 → Algorithm 1) over every
// output tuple of the TPC-H and IMDB suites, with per-query statistics.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := bench.RunCorpus(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		_ = bench.Table1(c)
	}
}

// BenchmarkTable2 regenerates Table 2: Monte Carlo and Kernel SHAP at
// 50·#facts samples versus CNF Proxy, with quality metrics against the
// exact ground truth.
func BenchmarkTable2(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := bench.CompareInexact(c, []int{50}, 99)
		_ = bench.Table2(recs, 50)
	}
}

// BenchmarkFigure4 regenerates Figure 4: KC and Algorithm 1 time as a
// function of #facts, #CNF clauses, and d-DNNF size.
func BenchmarkFigure4(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bench.Figure4(c)
	}
}

// BenchmarkFigure5 regenerates Figure 5: Algorithm 1 running time on
// representative TPC-H query outputs as the lineitem table scales.
func BenchmarkFigure5(b *testing.B) {
	base := benchOptions().TPCH
	for i := 0; i < b.N; i++ {
		points, err := bench.RunScaling(context.Background(), base, []float64{0.25, 0.5, 0.75, 1.0},
			[]string{"q3", "q10", "q9", "q19"}, 2,
			core.PipelineOptions{CompileTimeout: 2 * time.Second, ShapleyTimeout: 2 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		_ = bench.RenderScaling(points)
	}
}

// BenchmarkFigure6 regenerates Figure 6: inexact-method time and quality as
// a function of the sampling budget m ∈ {10n, ..., 50n}.
func BenchmarkFigure6(b *testing.B) {
	c := benchCorpus(b)
	budgets := []int{10, 20, 30, 40, 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := bench.CompareInexact(c, budgets, 7)
		_ = bench.Figure6(recs, budgets)
	}
}

// BenchmarkFigure7 regenerates Figure 7: the distribution and worst case of
// time/nDCG/P@10 per provenance-size bucket at budget 20n.
func BenchmarkFigure7(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := bench.CompareInexact(c, []int{20}, 11)
		_ = bench.Figure7(recs, 20)
	}
}

// BenchmarkFigure8 regenerates Figure 8: hybrid success rate and mean
// execution time as a function of the timeout.
func BenchmarkFigure8(b *testing.B) {
	c := benchCorpus(b)
	timeouts := []time.Duration{
		100 * time.Millisecond, 500 * time.Millisecond, time.Second,
		2500 * time.Millisecond, 5 * time.Second,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := bench.Figure8(c, timeouts)
		_ = bench.RenderFigure8(points)
	}
}

// --- micro-benchmarks of the core algorithms ---

func flightsLineage(b *testing.B) (*circuit.Node, []FactID) {
	b.Helper()
	d, _ := flights.Build()
	cb := circuit.NewBuilder()
	elin, err := engine.EvalBoolean(d, flights.Query(), cb, engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	endo := make([]FactID, 0, 8)
	for _, f := range d.EndogenousFacts() {
		endo = append(endo, f.ID)
	}
	return elin, endo
}

// BenchmarkAlgorithm1 measures the full exact pipeline on the paper's
// running example.
func BenchmarkAlgorithm1(b *testing.B) {
	elin, endo := flightsLineage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExplainCircuit(context.Background(), elin, endo, core.PipelineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCNFProxy measures Algorithm 2 on the running example's Tseytin
// CNF.
func BenchmarkCNFProxy(b *testing.B) {
	elin, endo := flightsLineage(b)
	formula := cnf.TseytinReserving(elin, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.CNFProxy(formula, endo)
	}
}

// BenchmarkMonteCarlo and BenchmarkKernelSHAP measure the sampling
// baselines at budget 50·n on the running example.
func BenchmarkMonteCarlo(b *testing.B) {
	elin, _ := flightsLineage(b)
	g := sampling.NewGame(elin)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sampling.MonteCarlo(g, 50*g.NumPlayers(), rng)
	}
}

func BenchmarkKernelSHAP(b *testing.B) {
	elin, _ := flightsLineage(b)
	g := sampling.NewGame(elin)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sampling.KernelSHAP(g, 50*g.NumPlayers(), rng)
	}
}

// --- ablation benches (design choices called out in DESIGN.md) ---

// hardCNF returns a CNF that takes the compiler some real work: the Tseytin
// transformation of a wide IMDB lineage.
func hardCNF(b *testing.B) *cnf.Formula {
	b.Helper()
	c := benchCorpus(b)
	var best *bench.TupleResult
	for _, t := range c.SuccessfulTuples() {
		if best == nil || t.NumFacts > best.NumFacts {
			best = t
		}
	}
	if best == nil {
		b.Skip("no successful tuples in corpus")
	}
	return best.CNF
}

// BenchmarkAblationComponentCache quantifies the compiler's component cache.
func BenchmarkAblationComponentCache(b *testing.B) {
	f := hardCNF(b)
	b.Run("cache=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{DisableCache: true, Timeout: 10 * time.Second}); err != nil {
				if err == dnnf.ErrTimeout {
					b.Skip("cache-off compilation exceeds 10s on this instance — the ablation's point")
				}
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationVarOrder compares the dynamic most-frequent heuristic
// against static lexicographic branching.
func BenchmarkAblationVarOrder(b *testing.B) {
	f := hardCNF(b)
	b.Run("order=most-frequent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{Order: dnnf.OrderMostFrequent}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("order=lexicographic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{Order: dnnf.OrderLexicographic, Timeout: 10 * time.Second}); err != nil {
				if err == dnnf.ErrTimeout {
					b.Skip("lexicographic compilation exceeds 10s on this instance")
				}
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationExactVsFloatCounts compares the exact big-integer
// #SAT_k dynamic program against the float64 variant (which loses exactness
// on large circuits and is therefore not used by Algorithm 1).
func BenchmarkAblationExactVsFloatCounts(b *testing.B) {
	f := hardCNF(b)
	compiled, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{})
	if err != nil {
		b.Fatal(err)
	}
	reduced := dnnf.EliminateAux(compiled, func(v int) bool { return f.Aux[v] })
	b.Run("counts=big.Int", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.ComputeAllSATk(reduced)
		}
	})
	b.Run("counts=float64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.FloatSATk(reduced)
		}
	})
}

// --- parallel pipeline benchmarks ---

// parallelWorkload compiles the largest successful corpus tuple (a TPC-H or
// IMDB lineage) down to its reduced d-DNNF, the input of Algorithm 1.
func parallelWorkload(b *testing.B) (*dnnf.Node, []FactID) {
	b.Helper()
	c := benchCorpus(b)
	var best *bench.TupleResult
	for _, t := range c.SuccessfulTuples() {
		if best == nil || t.NumFacts > best.NumFacts {
			best = t
		}
	}
	if best == nil {
		b.Skip("no successful tuples in corpus")
	}
	res, err := core.ExplainCircuit(context.Background(), best.ELin, best.Endo, core.PipelineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return res.DNNF, best.Endo
}

// BenchmarkShapleyAllParallel measures Algorithm 1's per-fact fan-out on the
// heaviest TPC-H/IMDB lineage of the corpus: workers=1 is the serial
// baseline, workers=GOMAXPROCS the saturated configuration. The strategy is
// pinned to per-fact so the benchmark isolates the fan-out (the gradient
// strategy is measured by BenchmarkShapleyAllGradient). The setup phase
// asserts the parallel Values are big.Rat-identical to the serial ones, so
// the speedup is measured on provably equivalent computations.
func BenchmarkShapleyAllParallel(b *testing.B) {
	circ, endo := parallelWorkload(b)
	serial, err := core.ShapleyAllStrategy(context.Background(), circ, endo, 1, core.StrategyPerFact)
	if err != nil {
		b.Fatal(err)
	}
	configs := []int{1, 2, runtime.GOMAXPROCS(0)}
	seen := make(map[int]bool)
	for _, workers := range configs {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		v, err := core.ShapleyAllStrategy(context.Background(), circ, endo, workers, core.StrategyPerFact)
		if err != nil {
			b.Fatal(err)
		}
		for f, sv := range serial {
			if pv := v[f]; pv == nil || pv.Cmp(sv) != 0 {
				b.Fatalf("workers=%d fact %d: %v != serial %v", workers, f, pv, sv)
			}
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ShapleyAllStrategy(context.Background(), circ, endo, workers, core.StrategyPerFact); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// thresholdDNNF builds the "at least t of n" voting function as a d-DNNF
// decision DAG (O(n·t) nodes, all n variables in the support) — a
// flights-scale circuit family whose fact count n can be dialed up freely.
func thresholdDNNF(b *dnnf.Builder, n, t int) *dnnf.Node {
	type key struct{ i, need int }
	memo := map[key]*dnnf.Node{}
	var rec func(i, need int) *dnnf.Node
	rec = func(i, need int) *dnnf.Node {
		if need <= 0 {
			return b.True()
		}
		if need > n-i+1 {
			return b.False()
		}
		k := key{i, need}
		if v, ok := memo[k]; ok {
			return v
		}
		v := b.Decision(i, rec(i+1, need-1), rec(i+1, need))
		memo[k] = v
		return v
	}
	return rec(1, t)
}

// BenchmarkShapleyAllGradient is the head-to-head for the two-pass gradient
// rewrite: per-fact conditioning (2n conditionings, O(n·|C|·n²)) versus the
// gradient strategy (two circuit passes, O(|C|·n²)) on threshold circuits
// with n ≥ 20 facts. Both run serially (workers=1) so the ratio isolates
// the algorithmic difference, and the setup phase asserts the two
// strategies produce big.Rat-identical values. The gradient advantage grows
// linearly with n.
func BenchmarkShapleyAllGradient(b *testing.B) {
	for _, n := range []int{20, 28} {
		bu := dnnf.NewBuilder()
		circ := thresholdDNNF(bu, n, n/2)
		endo := make([]FactID, n)
		for i := range endo {
			endo[i] = FactID(i + 1)
		}
		perFact, err := core.ShapleyAllStrategy(context.Background(), circ, endo, 1, core.StrategyPerFact)
		if err != nil {
			b.Fatal(err)
		}
		gradient, err := core.ShapleyAllStrategy(context.Background(), circ, endo, 1, core.StrategyGradient)
		if err != nil {
			b.Fatal(err)
		}
		for f, pv := range perFact {
			if gv := gradient[f]; gv == nil || gv.Cmp(pv) != 0 {
				b.Fatalf("n=%d fact %d: gradient %v != per-fact %v", n, f, gradient[f], pv)
			}
		}
		for _, cfg := range []struct {
			name     string
			strategy core.ShapleyStrategy
		}{
			{"per-fact", core.StrategyPerFact},
			{"gradient", core.StrategyGradient},
		} {
			b.Run(fmt.Sprintf("n=%d/strategy=%s", n, cfg.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.ShapleyAllStrategy(context.Background(), circ, endo, 1, cfg.strategy); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExplainParallel measures the end-to-end facade — per-answer
// fan-out plus per-fact fan-out — on the TPC-H q3 output at the default
// scale, serial versus saturated.
func BenchmarkExplainParallel(b *testing.B) {
	d := tpch.Generate(benchOptions().TPCH)
	var q *Query
	for _, bq := range tpch.Queries() {
		if bq.Name == "q3" {
			q = bq.Q
		}
	}
	if q == nil {
		b.Fatal("tpch q3 missing")
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := Options{Timeout: 2 * time.Second, Workers: workers, CacheSize: -1}
				if _, err := Explain(context.Background(), d, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileCache quantifies the cross-call compilation cache on
// repeated explanations of the same lineage (the answering-under-updates
// motivation: re-explaining after unrelated changes should reuse circuits).
func BenchmarkCompileCache(b *testing.B) {
	f := hardCNF(b)
	b.Run("cache=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache=on", func(b *testing.B) {
		cache := dnnf.NewCompileCache(4)
		for i := 0; i < b.N; i++ {
			if _, _, err := dnnf.Compile(context.Background(), f, dnnf.Options{Cache: cache}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
