package repro

// Compile and run every program under examples/ as a test, so CI catches
// API drift in the examples the moment the facade changes. Each example is
// a self-contained main package exercising the public API end to end; a
// non-zero exit or a build failure fails the test.

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesCompileAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run real workloads; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("examples", e.Name())
		if _, err := os.Stat(filepath.Join(dir, "main.go")); err != nil {
			continue
		}
		ran++
		t.Run(e.Name(), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./%s: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", e.Name())
			}
		})
	}
	if ran == 0 {
		t.Fatal("no examples found under examples/")
	}
}
