package repro

// Crash-recovery property tests: a process dying at an arbitrary byte
// offset of its write-ahead log must reopen to a prefix-consistent
// database — exactly the first m acknowledged mutations for some m, with
// no partial record applied — and the recovered database's Shapley values
// must be big.Rat-identical to a cold replay of that same prefix. Under
// SyncPolicy Always, m must equal the number of acknowledged mutations.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/db"
	"repro/internal/faultfs"
)

// crashOp is one acknowledged mutation of a randomized script.
type crashOp struct {
	insert bool
	// insert: the two column values and the endogenous flag; delete: ignored.
	a, b int64
	endo bool
	// delete: the position (in acked-insert order) of the victim among
	// inserts acked so far. Replaying by position keeps shadow IDs aligned
	// with the crashed run's IDs.
	victim int
}

// runCrashScript drives a randomized mutation script against a persistent
// sorted database whose WAL dies at crashAt bytes, and returns the ops
// that were acknowledged before the crash (or before the script ended).
func runCrashScript(t *testing.T, dir string, sync db.SyncPolicy, crashAt int64, rng *rand.Rand, nOps int) []crashOp {
	t.Helper()
	inj := faultfs.New()
	open := func(path string, flag int, perm os.FileMode) (db.WALFile, error) {
		return inj.Open(path, flag, perm)
	}
	st, err := db.OpenSortedStoreConfig(db.SortedConfig{Dir: dir, Sync: sync, OpenFile: open})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	d := db.NewWithStore(st)
	inj.CrashAt(crashAt)

	d.CreateRelation("R", "a", "b")
	if d.Err() != nil {
		return nil // crashed inside the schema record: zero acked mutations
	}
	var acked []crashOp
	var live []db.FactID // acked inserts still alive, in ack order
	for i := 0; i < nOps; i++ {
		if len(live) > 0 && rng.Intn(4) == 0 {
			k := rng.Intn(len(live))
			if err := d.Delete(live[k]); err != nil {
				return acked
			}
			acked = append(acked, crashOp{victim: k})
			live = append(live[:k], live[k+1:]...)
			continue
		}
		// Mostly exogenous facts keep the exact Shapley computation small
		// (the cross-check compiles the lineage twice per subtest) while
		// still exercising both flags through the log.
		op := crashOp{insert: true, a: int64(rng.Intn(7)), b: int64(rng.Intn(7)), endo: rng.Intn(4) == 0}
		f, err := d.Insert("R", op.endo, Int(op.a), Int(op.b))
		if err != nil {
			return acked
		}
		acked = append(acked, op)
		live = append(live, f.ID)
	}
	// Script completed without tripping the injector (crashAt beyond the
	// log's total size): simulate the crash by abandoning the database
	// without Close all the same.
	return acked
}

// replayOps rebuilds the first m acked ops cold, on the memory backend.
// Fact IDs are assigned by the same deterministic rule the crashed run
// used (sequential from 1), so provenance variables line up exactly.
func replayOps(ops []crashOp, m int) *Database {
	d := NewDatabase()
	d.CreateRelation("R", "a", "b")
	var live []db.FactID
	for _, op := range ops[:m] {
		if op.insert {
			f := d.MustInsert("R", op.endo, Int(op.a), Int(op.b))
			live = append(live, f.ID)
		} else {
			if err := d.Delete(live[op.victim]); err != nil {
				panic(err)
			}
			live = append(live[:op.victim], live[op.victim+1:]...)
		}
	}
	return d
}

// factSignature canonicalizes a database's fact set (IDs, relations,
// tuples, endogenous flags) for equality checks.
func factSignature(d *Database) string {
	var lines []string
	for _, f := range append(d.EndogenousFacts(), d.ExogenousFacts()...) {
		lines = append(lines, fmt.Sprintf("%d|%s|%s|%v", f.ID, f.Relation, f.Tuple, f.Endogenous))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func crashQuery(t *testing.T) *Query {
	t.Helper()
	q, err := ParseQuery(`q() :- R(x, y), R(y, z)`)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// explainValues computes exact Shapley values for the crash query.
func explainValues(t *testing.T, d *Database) Values {
	t.Helper()
	exp, err := ExplainBoolean(context.Background(), d, crashQuery(t), Options{})
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	return exp.Values
}

// crashSameValues reports big.Rat-identical Shapley value maps.
func crashSameValues(a, b Values) bool {
	if len(a) != len(b) {
		return false
	}
	for id, v := range a {
		w, ok := b[id]
		if !ok || v.Cmp(w) != 0 {
			return false
		}
	}
	return true
}

// TestCrashRecoveryPrefixConsistency is the fault-injection property test:
// for randomized scripts, sync policies, and crash offsets, reopening
// always yields exactly a prefix of the acknowledged mutations, with
// Shapley values identical to a cold replay of that prefix — and under
// SyncPolicy Always, the whole acknowledged script survives.
func TestCrashRecoveryPrefixConsistency(t *testing.T) {
	policies := []db.SyncPolicy{
		{Mode: db.SyncAlways},
		{Mode: db.SyncEveryN, N: 4},
		{Mode: db.SyncEveryN, N: 32},
		{Mode: db.SyncOnClose},
	}
	const nOps = 40
	for seed := int64(0); seed < 8; seed++ {
		for _, pol := range policies {
			t.Run(fmt.Sprintf("seed=%d/sync=%s", seed, pol), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed*31 + int64(pol.Mode)))
				// Offsets span "inside the schema record" through "past the
				// end of the log" (~90 bytes per framed record).
				crashAt := int64(rng.Intn(nOps * 110))
				dir := t.TempDir()
				acked := runCrashScript(t, dir, pol, crashAt, rng, nOps)

				re, info, err := db.OpenSortedConfig(db.SortedConfig{Dir: dir})
				if err != nil {
					t.Fatalf("recovery failed (crashAt=%d, acked=%d): %v", crashAt, len(acked), err)
				}
				defer re.Close()

				if re.Relation("R") == nil {
					// The schema record never became durable — the empty
					// prefix (m = 0). Legitimate under EveryN/OnClose, where
					// acknowledged ≠ fsynced; never under Always.
					if re.NumFacts() != 0 {
						t.Fatalf("facts recovered without their relation: %d", re.NumFacts())
					}
					if pol.Mode == db.SyncAlways && len(acked) != 0 {
						t.Fatalf("SyncAlways lost all %d acknowledged mutations", len(acked))
					}
					return
				}

				got := factSignature(re)
				m := -1
				for i := len(acked); i >= 0; i-- {
					if factSignature(replayOps(acked, i)) == got {
						m = i
						break
					}
				}
				if m < 0 {
					t.Fatalf("recovered state (crashAt=%d, dropped=%d bytes) matches no acked prefix:\n%s",
						crashAt, info.DroppedBytes, got)
				}
				if pol.Mode == db.SyncAlways && m != len(acked) {
					t.Fatalf("SyncAlways lost acknowledged mutations: recovered prefix %d of %d", m, len(acked))
				}
				// The recovered database must explain identically to a cold
				// replay of the surviving prefix.
				if !crashSameValues(explainValues(t, re), explainValues(t, replayOps(acked, m))) {
					t.Fatalf("Shapley values diverge from cold replay of prefix %d/%d", m, len(acked))
				}
			})
		}
	}
}

// TestConcurrentExplainsAfterRecovery reopens a torn-tail directory and
// hammers the recovered database with concurrent explains (run under
// -race in CI): recovery must hand back structures safe for parallel
// read-only use, all agreeing on the same values.
func TestConcurrentExplainsAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	acked := runCrashScript(t, dir, db.SyncPolicy{Mode: db.SyncAlways}, 4000, rng, 40)
	if len(acked) == 0 {
		t.Fatal("script acked nothing")
	}
	re, _, err := db.OpenSortedConfig(db.SortedConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	want := explainValues(t, re)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				exp, err := ExplainBoolean(context.Background(), re, crashQuery(t), Options{})
				if err != nil {
					errs <- fmt.Sprintf("explain: %v", err)
					return
				}
				if !crashSameValues(want, exp.Values) {
					errs <- "concurrent explain diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
