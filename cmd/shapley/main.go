// Command shapley computes Shapley values of database facts for query
// answers, end to end: it loads one of the built-in datasets (the paper's
// flights running example, or a synthetic TPC-H or IMDB instance), runs a
// query — either a named suite query or one given in datalog syntax — and
// prints the ranked fact contributions for every output tuple.
//
// Usage:
//
//	shapley -dataset flights
//	shapley -dataset tpch -query q3 -timeout 2.5s
//	shapley -dataset imdb -query 8d -top 5
//	shapley -dataset tpch -q "q(ck) :- customer(ck, cn, nk, seg, cb), orders(ok, ck, os, tp, od, op)"
//	shapley -dataset flights -method proxy
//	shapley -dataset flights -approx        # sampled estimates with 95% CIs
//	shapley -dataset tpch -budget 50ms      # exact within budget, else degrade
//	shapley -dataset flights -json          # machine-readable (wire) output
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/db"
	"repro/internal/flights"
	"repro/internal/imdb"
	"repro/internal/tpch"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	var (
		dataset = flag.String("dataset", "flights", "dataset: flights, tpch, or imdb")
		queryNm = flag.String("query", "", "named suite query (e.g. q3 for tpch, 8d for imdb); default: the dataset's demo query")
		queryTx = flag.String("q", "", "inline datalog query text (overrides -query)")
		timeout = flag.Duration("timeout", 2500*time.Millisecond, "exact-computation budget per output tuple (0 = unbounded)")
		top     = flag.Int("top", 10, "how many facts to print per output tuple")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor for tpch/imdb")
		method  = flag.String("method", "hybrid", "hybrid (exact with proxy fallback) or proxy (force CNF Proxy via zero budget)")
		workers = flag.Int("workers", 0, "pipeline concurrency (0 = GOMAXPROCS, 1 = serial)")
		cworker = flag.Int("compile-workers", 0, "knowledge-compiler component fan-out (0 = inherit the per-tuple worker share, negative = GOMAXPROCS, 1 = sequential)")
		spec    = flag.Bool("speculate", false, "compile hi/lo cofactors of shallow Shannon decisions concurrently (parallelism for single-component lineages)")
		folio   = flag.Bool("portfolio", false, "race variable-ordering heuristics per CNF, first finisher wins (needs ≥2 compile workers)")
		cache   = flag.Int("cache", 0, "compiled-circuit cache size (0 = default, negative = disabled)")
		nocanon = flag.Bool("nocanon", false, "key the compile cache byte-identically instead of by canonical (rename-invariant) form")
		strat   = flag.String("strategy", "auto", "Algorithm 1 evaluation mode: auto, per-fact, or gradient")
		asJSON  = flag.Bool("json", false, "emit the machine-readable wire encoding (the same JSON the shapleyd service serves) instead of text")
		approx  = flag.Bool("approx", false, "skip the exact pipeline and sample Shapley estimates with 95% confidence intervals")
		budget  = flag.Duration("budget", 0, "anytime budget: exact-attempt deadline before degrading to sampled estimates (0 = no anytime tier)")
		minSamp = flag.Int("approx-min-samples", 0, "sampling minimum permutation count (0 = sampler default)")
		seed    = flag.Int64("seed", 0, "sampling seed perturbation (0 = the canonical lineage-derived seed)")
		doTrace = flag.Bool("trace", false, "record per-stage spans (ground, tseytin, compile, shapley, ...) and print the span tree — or attach it to -json output")
	)
	flag.Parse()

	strategy, err := repro.ParseShapleyStrategy(*strat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shapley:", err)
		os.Exit(1)
	}

	// Interrupt cancels the in-flight explanation instead of killing the
	// process mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	d, q, err := load(*dataset, *queryNm, *queryTx, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shapley:", err)
		os.Exit(1)
	}

	opts := repro.Options{
		Timeout:          *timeout,
		Workers:          *workers,
		CompileWorkers:   *cworker,
		Speculate:        *spec,
		Portfolio:        *folio,
		CacheSize:        *cache,
		NoCanonicalCache: *nocanon,
		Strategy:         strategy,
	}
	if *method == "proxy" {
		// A 1-node budget forces the proxy path without waiting.
		opts.MaxNodes = 1
		opts.Timeout = time.Millisecond
	}
	opts.Budget = repro.ExplainBudget{
		Deadline:   *budget,
		MinSamples: *minSamp,
		Seed:       *seed,
	}
	if *approx {
		opts.Budget.Mode = repro.ModeApproximate
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "shapley:", err)
		os.Exit(1)
	}

	// With -trace, the whole run executes under a collecting span root — the
	// same instrumentation the shapleyd service exposes per request.
	var root *trace.Span
	if *doTrace {
		ctx, root = trace.NewRoot(ctx, "explain", nil)
	}
	start := time.Now()
	explanations, err := repro.Explain(ctx, d, q, opts)
	root.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "shapley:", err)
		os.Exit(1)
	}
	if *asJSON {
		// Same encoding package as the shapleyd service, so a CLI run and a
		// served response for the same database state are diffable.
		resp := wire.ExplainResponse{
			Dataset:   *dataset,
			Query:     q.String(),
			ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
			Tuples:    wire.EncodeExplanations(d, explanations, *top),
		}
		if root != nil {
			resp.Trace = root.Snapshot()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			fmt.Fprintln(os.Stderr, "shapley:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("query:\n%s\n\n%d output tuple(s) in %v\n\n", q, len(explanations), time.Since(start))
	for _, e := range explanations {
		tuple := e.Tuple.String()
		if len(e.Tuple) == 0 {
			tuple = "(yes)"
		}
		if e.Method == repro.MethodApprox {
			fmt.Printf("answer %s — %d provenance fact(s), method=%v (%d samples, seed %d), %v\n",
				tuple, e.NumFacts, e.Method, e.Samples, e.ApproxSeed, e.Elapsed.Round(time.Microsecond))
		} else {
			fmt.Printf("answer %s — %d provenance fact(s), method=%v, %v\n",
				tuple, e.NumFacts, e.Method, e.Elapsed.Round(time.Microsecond))
		}
		for rank, f := range e.TopFacts(*top) {
			fact := d.Fact(f)
			if e.Method == repro.MethodApprox {
				est := e.Approx[f]
				fmt.Printf("  %2d. %-60s %.6f  95%% CI [%.6f, %.6f]\n",
					rank+1, factLabel(fact), est.Value, est.CILow, est.CIHigh)
			} else {
				fmt.Printf("  %2d. %-60s %.6f\n", rank+1, factLabel(fact), e.Score(f))
			}
		}
		fmt.Println()
	}
	if root != nil {
		fmt.Println("stage trace:")
		printSpan(root.Snapshot(), 0)
	}
}

// printSpan renders a span tree, one indented line per stage with its wall
// time and attributes.
func printSpan(n *wire.TraceSpan, depth int) {
	attrs := ""
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%v", k, n.Attrs[k])
		}
		attrs = "  [" + strings.Join(parts, " ") + "]"
	}
	fmt.Printf("%s%-10s %9.3fms%s\n", strings.Repeat("  ", depth+1), n.Name, n.DurationMs, attrs)
	for _, c := range n.Children {
		printSpan(c, depth+1)
	}
}

func factLabel(f *db.Fact) string {
	if f == nil {
		return "(unknown fact)"
	}
	return fmt.Sprintf("%s%s", f.Relation, f.Tuple)
}

func load(dataset, queryNm, queryTx string, scale float64) (*repro.Database, *repro.Query, error) {
	var d *repro.Database
	switch dataset {
	case "flights":
		d, _ = flights.Build()
	case "tpch":
		d = tpch.Generate(tpch.DefaultConfig().Scaled(scale))
	case "imdb":
		d = imdb.Generate(imdb.DefaultConfig().Scaled(scale))
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q (want flights, tpch, or imdb)", dataset)
	}

	if queryTx != "" {
		q, err := repro.ParseQuery(queryTx)
		if err != nil {
			return nil, nil, err
		}
		return d, q, nil
	}

	switch dataset {
	case "flights":
		return d, flights.Query(), nil
	case "tpch":
		if queryNm == "" {
			queryNm = "q3"
		}
		for _, bq := range tpch.Queries() {
			if bq.Name == queryNm {
				return d, bq.Q, nil
			}
		}
		return nil, nil, fmt.Errorf("unknown tpch query %q", queryNm)
	default: // imdb
		if queryNm == "" {
			queryNm = "1a"
		}
		for _, bq := range imdb.Queries() {
			if bq.Name == queryNm {
				return d, bq.Q, nil
			}
		}
		return nil, nil, fmt.Errorf("unknown imdb query %q", queryNm)
	}
}
