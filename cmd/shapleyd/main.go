// Command shapleyd serves Shapley explanations over HTTP: it loads the
// requested datasets, opens a bounded pool of warm explanation sessions —
// one per (dataset, query), maintained incrementally under updates — and
// answers the wire API of internal/server:
//
//	POST /v1/explain  {"dataset": "flights", "query": "q() :- ...", "top": 3}
//	POST /v1/update   {"dataset": "flights", "query": "...", "inserts": [...], "deletes": [...]}
//	GET  /v1/stats    session-pool, compile-cache, and request counters
//	GET  /healthz     liveness
//
// SIGINT/SIGTERM drain in-flight requests before exiting (bounded by
// -drain), then close the pool.
//
// Usage:
//
//	shapleyd -addr :8080 -datasets flights
//	shapleyd -addr :8080 -datasets flights,tpch,imdb -scale 0.5 -pool 16 -timeout 2.5s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/flights"
	"repro/internal/imdb"
	"repro/internal/server"
	"repro/internal/tpch"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		datasets = flag.String("datasets", "flights", "comma-separated datasets to serve: flights, tpch, imdb")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor for tpch/imdb")
		poolSize = flag.Int("pool", server.DefaultPoolSize, "session pool capacity (warm (dataset, query) sessions; LRU beyond)")
		drain    = flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests")
		timeout  = flag.Duration("timeout", 2500*time.Millisecond, "exact-computation budget per output tuple (0 = unbounded)")
		workers  = flag.Int("workers", 0, "per-request pipeline concurrency (0 = GOMAXPROCS, 1 = serial)")
		cworker  = flag.Int("compile-workers", 0, "knowledge-compiler component fan-out (0 = inherit, -1 = GOMAXPROCS, 1 = sequential)")
		spec     = flag.Bool("speculate", false, "compile hi/lo cofactors of shallow Shannon decisions concurrently (parallelism for single-component lineages)")
		folio    = flag.Bool("portfolio", false, "race variable-ordering heuristics per CNF, first finisher wins (needs \u22652 compile workers)")
		cache    = flag.Int("cache", 0, "compiled-circuit cache size (0 = default, -1 = disabled)")
		nocanon  = flag.Bool("nocanon", false, "key the compile cache byte-identically instead of canonically")
		strat    = flag.String("strategy", "auto", "Algorithm 1 evaluation mode: auto, per-fact, or gradient")
		store    = flag.String("store", "", "storage backend for served datasets: memory (default) or sorted")
		storeDir = flag.String("store-dir", "", "with -store sorted: persist each dataset under <dir>/<name> (reloaded on restart)")
		indexes  = flag.Int("indexes", 0, "per-relation secondary-index budget (0 = backend default)")
		fsync    = flag.String("fsync", "every", "WAL sync policy for persistent stores: always, every, every=N, or onclose")
		reqTO    = flag.Duration("request-timeout", 0, "per-request deadline for explain/update (0 = none); expired requests get 504")
		inflight = flag.Int("max-inflight", 0, "max concurrently executing requests per work route (0 = unbounded); excess sheds with 429 + Retry-After")
		ebudget  = flag.Duration("explain-budget", 0, "per-explain exact-attempt deadline before degrading to sampled estimates with confidence intervals (0 = no anytime tier)")
		emaxn    = flag.Int("explain-max-nodes", 0, "per-explain compiled-circuit node budget before degrading to sampled estimates (0 = no node trigger)")
		aminsamp = flag.Int("approx-min-samples", 0, "sampling fallback's minimum permutation count (0 = sampler default)")
		atarget  = flag.Float64("approx-target-ci", 0, "sampling fallback's target 95%-CI half-width, in (0,1) (0 = sampler default)")
		slowTO   = flag.Duration("slow-explain", 0, "wall-clock threshold past which an explain is logged and kept (with its stage trace) in the /v1/debug/slow ring (0 = disabled)")
		slowCap  = flag.Int("slow-log-size", 0, "slow-explain ring capacity (0 = default)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (loopback clients only)")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "shapleyd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	strategy, err := repro.ParseShapleyStrategy(*strat)
	if err != nil {
		fatal("bad -strategy", err)
	}
	syncPolicy, err := repro.ParseSyncPolicy(*fsync)
	if err != nil {
		fatal("bad -fsync", err)
	}

	cfg := server.Config{
		Datasets:       make(map[string]*repro.Database),
		PoolSize:       *poolSize,
		RequestTimeout: *reqTO,
		MaxInFlight:    *inflight,
		Logger:         logger,
		SlowThreshold:  *slowTO,
		SlowLogSize:    *slowCap,
		EnablePprof:    *pprofOn,
		Options: repro.Options{
			Timeout:          *timeout,
			Workers:          *workers,
			CompileWorkers:   *cworker,
			Speculate:        *spec,
			Portfolio:        *folio,
			CacheSize:        *cache,
			NoCanonicalCache: *nocanon,
			Strategy:         strategy,
			Storage:          *store,
			IndexBudget:      *indexes,
			Budget: repro.ExplainBudget{
				Deadline:   *ebudget,
				MaxNodes:   *emaxn,
				MinSamples: *aminsamp,
				TargetCI:   *atarget,
			},
		},
	}
	if err := cfg.Options.Validate(); err != nil {
		fatal("invalid options", err)
	}
	if *storeDir != "" && *store != repro.BackendSorted {
		fatal("bad flags", fmt.Errorf("-store-dir requires -store %s", repro.BackendSorted))
	}
	for _, name := range strings.Split(*datasets, ",") {
		name = strings.TrimSpace(name)
		start := time.Now()
		var d *repro.Database
		switch name {
		case "flights":
			d, _ = flights.Build()
		case "tpch":
			d = tpch.Generate(tpch.DefaultConfig().Scaled(*scale))
		case "imdb":
			d = imdb.Generate(imdb.DefaultConfig().Scaled(*scale))
		case "":
			continue
		default:
			fatal("unknown dataset", fmt.Errorf("%q (want flights, tpch, or imdb)", name))
		}
		// Generators build on the default backend; move the dataset onto
		// the requested store (fact IDs survive the migration, so nothing
		// downstream notices). A directory already holding a persisted copy
		// — including updates served by previous runs — is reloaded instead
		// of being overwritten by the freshly generated dataset.
		if *store != "" && *store != repro.BackendMemory {
			dir := ""
			if *storeDir != "" {
				dir = filepath.Join(*storeDir, name)
				if err := os.MkdirAll(dir, 0o755); err != nil {
					fatal("creating store dir", err)
				}
			}
			if dir != "" && repro.DatabasePersisted(dir) {
				pd, info, err := repro.OpenDatabaseInfo(dir, syncPolicy)
				if err != nil {
					fatal(fmt.Sprintf("reloading %s from %s", name, dir), err)
				}
				logger.Info("dataset recovered", "dataset", name,
					"snapshot_records", info.SnapshotRecords, "wal_records", info.LogRecords,
					"torn_tail", info.Truncated, "dropped_bytes", info.DroppedBytes)
				d = pd
			} else {
				md, err := d.Migrate(*store, dir)
				if err != nil {
					fatal(fmt.Sprintf("migrating %s to %s", name, *store), err)
				}
				d = md
				if err := d.SetSyncPolicy(syncPolicy); err != nil {
					fatal("setting sync policy", err)
				}
			}
		}
		if *indexes > 0 {
			d.SetIndexBudget(*indexes)
		}
		cfg.Datasets[name] = d
		logger.Info("dataset loaded", "dataset", name, "facts", d.NumFacts(),
			"backend", d.Backend(), "elapsed", time.Since(start).Round(time.Millisecond))
	}

	s, err := server.New(cfg)
	if err != nil {
		fatal("configuring server", err)
	}

	// Server-level I/O deadlines: slow or stalled clients cannot hold a
	// connection open indefinitely. The write timeout leaves the handler's
	// own -request-timeout room to respond (a generous ceiling when no
	// per-request deadline is set).
	writeTO := 5 * time.Minute
	if *reqTO > 0 {
		writeTO = *reqTO + 30*time.Second
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTO,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Info("shapleyd listening", "addr", *addr, "pool", *poolSize,
		"datasets", len(cfg.Datasets), "pprof", *pprofOn, "slow_explain", *slowTO)

	select {
	case err := <-errCh:
		fatal("serving", err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down: draining in-flight requests", "budget", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "error", err)
	}
	s.Close()
	// Closing the databases flushes persistent mutation logs to disk.
	for name, d := range cfg.Datasets {
		if err := d.Close(); err != nil {
			logger.Error("closing dataset", "dataset", name, "error", err)
		}
	}
	logger.Info("bye")
}
