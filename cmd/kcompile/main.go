// Command kcompile is a standalone knowledge compiler in the spirit of c2d:
// it reads CNFs in DIMACS format, compiles them to deterministic
// decomposable circuits (d-DNNF), and reports the circuit size, compilation
// statistics, and the model count (optionally the full #SAT_k spectrum).
//
// Several input files compile concurrently across -workers goroutines with a
// shared compiled-circuit cache keyed by canonical (rename-invariant) form,
// so a batch containing duplicate — or renamed-isomorphic — formulas pays
// for each distinct structure once; within one compilation, independent
// components fan out across -compile-workers goroutines. Reports print in
// argument order. An interrupt (Ctrl-C) cancels the in-flight compilations.
//
// Usage:
//
//	kcompile problem.cnf
//	kcompile -spectrum -order lex problem.cnf
//	kcompile -workers 8 a.cnf b.cnf c.cnf
//	echo "p cnf 2 2\n1 2 0\n-1 2 0" | kcompile -
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/dnnf"
	"repro/internal/parallel"
)

func main() {
	var (
		order    = flag.String("order", "freq", "branching heuristic: freq (most frequent), lex (lexicographic), or jw (Jeroslow-Wang)")
		noCache  = flag.Bool("nocache", false, "disable component caching")
		timeout  = flag.Duration("timeout", 0, "compilation timeout per input (0 = none)")
		maxNodes = flag.Int("maxnodes", 0, "node budget (0 = none)")
		spectrum = flag.Bool("spectrum", false, "print #SAT_k for every Hamming weight k")
		outPath  = flag.String("o", "", "write the compiled circuit in c2d nnf format to this file (single input only)")
		workers  = flag.Int("workers", 0, "concurrent compilations across inputs (0 = GOMAXPROCS)")
		cworkers = flag.Int("compile-workers", 0, "component fan-out within each compilation (0 = split GOMAXPROCS across the concurrent inputs, 1 = sequential)")
		cacheSz  = flag.Int("cache", dnnf.DefaultCompileCacheSize, "compiled-circuit cache capacity shared across inputs (0 = disabled)")
		nocanon  = flag.Bool("nocanon", false, "key the shared cache byte-identically instead of by canonical (rename-invariant) form")
		spec     = flag.Bool("speculate", false, "compile hi/lo cofactors of shallow Shannon decisions concurrently")
		folio    = flag.Bool("portfolio", false, "race branching heuristics per input, first finisher wins (needs \u22652 compile workers; -order still sets the favored racer)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: kcompile [flags] <file.cnf... | ->")
		os.Exit(2)
	}
	if *outPath != "" && flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "kcompile: -o requires exactly one input")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Split the CPU budget between cross-file concurrency and per-file
	// component fan-out (mirroring repro.Explain's per-tuple split), so the
	// defaults never schedule workers × compile-workers CPU-bound
	// goroutines.
	compileWorkers := *cworkers
	if compileWorkers == 0 {
		fileWorkers := parallel.Workers(*workers)
		if fileWorkers > flag.NArg() {
			fileWorkers = flag.NArg()
		}
		compileWorkers = parallel.Workers(0) / fileWorkers
		if compileWorkers < 1 {
			compileWorkers = 1
		}
	}
	varOrder, err := dnnf.ParseVarOrder(*order)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kcompile:", err)
		os.Exit(2)
	}
	opts := dnnf.Options{
		Timeout:          *timeout,
		MaxNodes:         *maxNodes,
		DisableCache:     *noCache,
		Order:            varOrder,
		Workers:          compileWorkers,
		Speculate:        *spec,
		Portfolio:        *folio,
		NoCanonicalCache: *nocanon,
	}
	// -nocache is the ablation switch: it must disable the cross-call cache
	// too, or repeated inputs would report near-zero compilation effort.
	if *cacheSz > 0 && !*noCache {
		opts.Cache = dnnf.NewCompileCache(*cacheSz)
	}

	formulas := make([]*cnf.Formula, flag.NArg())
	for i, arg := range flag.Args() {
		f, err := readFormula(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kcompile:", err)
			os.Exit(1)
		}
		formulas[i] = f
	}

	reports := make([]string, len(formulas))
	err = parallel.ForEach(ctx, len(formulas), *workers, func(_, i int) error {
		report, err := compileOne(ctx, flag.Arg(i), formulas[i], opts, *spectrum, *outPath)
		if err != nil {
			return fmt.Errorf("%s: %w", flag.Arg(i), err)
		}
		reports[i] = report
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kcompile:", err)
		os.Exit(1)
	}
	for i, r := range reports {
		if len(reports) > 1 {
			fmt.Printf("=== %s ===\n", flag.Arg(i))
		}
		fmt.Print(r)
	}
}

func readFormula(arg string) (*cnf.Formula, error) {
	var in io.Reader
	if arg == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	return cnf.ParseDIMACS(in)
}

func compileOne(ctx context.Context, name string, formula *cnf.Formula, opts dnnf.Options, spectrum bool, outPath string) (string, error) {
	start := time.Now()
	compiled, stats, err := dnnf.Compile(ctx, formula, opts)
	if err != nil {
		return "", err
	}
	elapsed := time.Since(start)

	var sb strings.Builder
	vars := formula.Vars()
	fmt.Fprintf(&sb, "input:    %d vars, %d clauses\n", len(vars), formula.NumClauses())
	fmt.Fprintf(&sb, "compiled: %d nodes, %d edges in %v\n", dnnf.Size(compiled), dnnf.NumEdges(compiled), elapsed.Round(time.Microsecond))
	fmt.Fprintf(&sb, "stats:    %v\n", stats)
	fmt.Fprintf(&sb, "models:   %v (over %d variables)\n", dnnf.CountModels(compiled, vars), len(vars))

	if outPath != "" {
		out, err := os.Create(outPath)
		if err != nil {
			return "", err
		}
		if err := dnnf.WriteNNF(out, compiled); err != nil {
			return "", err
		}
		if err := out.Close(); err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "wrote:    %s\n", outPath)
	}

	if spectrum {
		counts := core.PadToUniverse(core.ComputeAllSATk(compiled), len(vars)-len(compiled.Vars()))
		for k, c := range counts {
			if c.Sign() != 0 {
				fmt.Fprintf(&sb, "  #SAT_%d = %v\n", k, c)
			}
		}
	}
	return sb.String(), nil
}
