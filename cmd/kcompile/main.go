// Command kcompile is a standalone knowledge compiler in the spirit of c2d:
// it reads a CNF in DIMACS format, compiles it to a deterministic
// decomposable circuit (d-DNNF), and reports the circuit size, compilation
// statistics, and the model count (optionally the full #SAT_k spectrum).
//
// Usage:
//
//	kcompile problem.cnf
//	kcompile -spectrum -order lex problem.cnf
//	echo "p cnf 2 2\n1 2 0\n-1 2 0" | kcompile -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/dnnf"
)

func main() {
	var (
		order    = flag.String("order", "freq", "branching heuristic: freq (most frequent) or lex (lexicographic)")
		noCache  = flag.Bool("nocache", false, "disable component caching")
		timeout  = flag.Duration("timeout", 0, "compilation timeout (0 = none)")
		maxNodes = flag.Int("maxnodes", 0, "node budget (0 = none)")
		spectrum = flag.Bool("spectrum", false, "print #SAT_k for every Hamming weight k")
		outPath  = flag.String("o", "", "write the compiled circuit in c2d nnf format to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kcompile [flags] <file.cnf | ->")
		os.Exit(2)
	}

	var in io.Reader
	if flag.Arg(0) == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "kcompile:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	formula, err := cnf.ParseDIMACS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kcompile:", err)
		os.Exit(1)
	}

	opts := dnnf.Options{
		Timeout:      *timeout,
		MaxNodes:     *maxNodes,
		DisableCache: *noCache,
	}
	if *order == "lex" {
		opts.Order = dnnf.OrderLexicographic
	}

	start := time.Now()
	compiled, stats, err := dnnf.Compile(formula, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kcompile:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	vars := formula.Vars()
	fmt.Printf("input:    %d vars, %d clauses\n", len(vars), formula.NumClauses())
	fmt.Printf("compiled: %d nodes, %d edges in %v\n", dnnf.Size(compiled), dnnf.NumEdges(compiled), elapsed.Round(time.Microsecond))
	fmt.Printf("stats:    %v\n", stats)
	fmt.Printf("models:   %v (over %d variables)\n", dnnf.CountModels(compiled, vars), len(vars))

	if *outPath != "" {
		out, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kcompile:", err)
			os.Exit(1)
		}
		if err := dnnf.WriteNNF(out, compiled); err != nil {
			fmt.Fprintln(os.Stderr, "kcompile:", err)
			os.Exit(1)
		}
		if err := out.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "kcompile:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote:    %s\n", *outPath)
	}

	if *spectrum {
		counts := core.PadToUniverse(core.ComputeAllSATk(compiled), len(vars)-len(compiled.Vars()))
		for k, c := range counts {
			if c.Sign() != 0 {
				fmt.Printf("  #SAT_%d = %v\n", k, c)
			}
		}
	}
}
