// Command promcheck scrapes a Prometheus text exposition and validates it:
// every line must parse, every sample needs a preceding # TYPE header, and
// histograms must be cumulative with a +Inf bucket equal to _count. With
// -require (repeatable), it additionally fails unless a sample matches each
// requirement — `name` or `name{label="value",...}`, labels matched as a
// subset. CI runs it against a live shapleyd's /metrics.
//
// Usage:
//
//	promcheck -url http://localhost:8080/metrics
//	promcheck -url ... -require 'repro_requests_total{route="/v1/explain",code="200"}'
//	promcheck -file exposition.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/promlint"
)

func main() {
	var (
		url     = flag.String("url", "", "metrics endpoint to scrape (e.g. http://localhost:8080/metrics)")
		file    = flag.String("file", "", "read the exposition from a file instead of scraping ('-' = stdin)")
		timeout = flag.Duration("timeout", 10*time.Second, "scrape timeout")
	)
	var requires []string
	flag.Func("require", "series that must be present, `name` or `name{label=\"value\",...}` (repeatable)", func(v string) error {
		requires = append(requires, v)
		return nil
	})
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
		os.Exit(1)
	}

	var text string
	switch {
	case *url != "":
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(*url)
		if err != nil {
			fail("%v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("%s: status %s", *url, resp.Status)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			fail("reading %s: %v", *url, err)
		}
		text = string(raw)
	case *file == "-":
		raw, err := io.ReadAll(os.Stdin)
		if err != nil {
			fail("reading stdin: %v", err)
		}
		text = string(raw)
	case *file != "":
		raw, err := os.ReadFile(*file)
		if err != nil {
			fail("%v", err)
		}
		text = string(raw)
	default:
		fail("one of -url or -file is required")
	}

	stats, err := promlint.Validate(text)
	if err != nil {
		fail("invalid exposition: %v", err)
	}
	samples, _, err := promlint.Parse(text)
	if err != nil {
		fail("%v", err)
	}
	missing := 0
	for _, req := range requires {
		if err := promlint.Require(samples, req); err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			missing++
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok — %d families, %d samples, %d required series present\n",
		stats.Families, stats.Samples, len(requires))
}
