// Command benchtables regenerates every table and figure of the paper's
// evaluation section over the synthetic TPC-H and IMDB workloads and prints
// them as text. The mapping from artifact to code is documented in
// DESIGN.md; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	benchtables                       # everything, default scale
//	benchtables -only table1,fig8    # a subset
//	benchtables -scale 2 -timeout 5s # bigger instance, larger budget
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/servebench"
	"repro/internal/updatebench"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated subset: table1,table2,fig4,fig5,fig6,fig7,fig8")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		timeout = flag.Duration("timeout", 2500*time.Millisecond, "exact-computation budget per output tuple")
		maxTup  = flag.Int("maxtuples", 200, "max output tuples per query (0 = unbounded)")
		workers = flag.Int("workers", 0, "per-tuple Algorithm 1 fan-out (0 = GOMAXPROCS, 1 = serial)")
		cworker = flag.Int("compile-workers", 0, "knowledge-compiler component fan-out per tuple (0 = GOMAXPROCS, 1 = sequential)")
		cacheSz = flag.Int("cache", 0, "compiled-circuit cache capacity per suite (0 = disabled)")
		nocanon = flag.Bool("nocanon", false, "key the compile cache byte-identically instead of canonically")
		strat   = flag.String("strategy", "auto", "Algorithm 1 evaluation mode: auto, per-fact, or gradient")
		benchJS = flag.String("benchjson", "", "write a BENCH_shapley.json perf report (per-tuple timings, per-fact vs gradient head-to-head, worker scaling) to this path")
		compJS  = flag.String("compilejson", "", "write a BENCH_compile.json perf report (serial vs parallel compile head-to-head, canonical vs byte-identical cache hit rates) to this path")
		updJS   = flag.String("updatejson", "", "write a BENCH_update.json perf report (incremental session maintenance vs recompute-from-scratch across update batch sizes) to this path")
		srvJS   = flag.String("servejson", "", "write a BENCH_serve.json perf report (HTTP serving: pooled vs open-per-request head-to-head, session-pool counters) to this path")
	)
	flag.Parse()

	strategy, err := core.ParseShapleyStrategy(*strat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	want := map[string]bool{}
	if *only == "" {
		for _, k := range []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8"} {
			want[k] = true
		}
	} else {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}

	opts := bench.DefaultOptions()
	opts.TPCH = opts.TPCH.Scaled(*scale)
	opts.IMDB = opts.IMDB.Scaled(*scale)
	opts.Timeout = *timeout
	opts.MaxTuplesPerQuery = *maxTup
	opts.Workers = *workers
	opts.CompileWorkers = *cworker
	opts.CacheSize = *cacheSz
	opts.NoCanonicalCache = *nocanon
	opts.Strategy = strategy
	// The head-to-head report reruns both strategies on the heaviest
	// reduced circuits, so only retain them when the report is requested.
	opts.KeepDNNF = *benchJS != ""

	fmt.Printf("== Corpus: TPC-H + IMDB (scale %.2f, timeout %v) ==\n", *scale, *timeout)
	start := time.Now()
	corpus, err := bench.RunCorpus(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	total, success := 0, 0
	for _, t := range corpus.Tuples() {
		total++
		if t.Success {
			success++
		}
	}
	fmt.Printf("corpus built in %v: %d output tuples, %d exact successes (%.2f%%)\n\n",
		time.Since(start).Round(time.Millisecond), total, success, 100*float64(success)/float64(max(total, 1)))

	if *cacheSz > 0 {
		section("Per-query compile-cache hit rates (canonical keying)")
		for _, r := range corpus.Runs {
			st := r.CacheStats
			if st.Hits+st.Misses == 0 {
				continue
			}
			fmt.Printf("%s/%s: %d identical + %d renamed hits, %d misses (hit rate %.2f, %d evictions)\n",
				r.Dataset, r.Name, st.IdenticalHits, st.RenamedHits, st.Misses, st.HitRate(), st.Evictions)
		}
		fmt.Println()
	}

	if *srvJS != "" {
		section("Serve bench — session pool vs open-per-request over HTTP")
		rep, err := servebench.Run(ctx, servebench.Options{
			Repro: repro.Options{Timeout: *timeout, Workers: *workers, CompileWorkers: *cworker,
				CacheSize: *cacheSz, NoCanonicalCache: *nocanon, Strategy: strategy},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		for _, h := range rep.HeadToHead {
			fmt.Printf("serve head-to-head clients=%d: pooled p50 %.2fms vs open-per-request %.2fms (%.1fx), throughput %.0f vs %.0f req/s\n",
				h.Clients, h.PooledP50Ms, h.UnpooledP50Ms, h.P50Speedup, h.PooledRPS, h.UnpooledRPS)
		}
		// Session-pool counters next to the compile cache's numbers, the
		// same pairing GET /v1/stats serves.
		fmt.Printf("session pool: opens=%d reuses=%d evictions=%d update requests=%d batches=%d coalesced=%d\n",
			rep.Pool.Opens, rep.Pool.Reuses, rep.Pool.Evictions,
			rep.Pool.UpdateRequests, rep.Pool.UpdateBatches, rep.Pool.CoalescedBatches)
		fmt.Printf("compile cache: %d hits (%d identical, %d renamed), %d misses, %d evictions, %d invalidations\n",
			rep.Cache.Hits, rep.Cache.IdenticalHits, rep.Cache.RenamedHits,
			rep.Cache.Misses, rep.Cache.Evictions, rep.Cache.Invalidations)
		if err := servebench.Write(*srvJS, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n\n", *srvJS)
	}

	if *updJS != "" {
		rep, err := updatebench.RunUpdateBench(ctx, opts, []int{1, 2, 4, 8}, nil, 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		if err := updatebench.WriteUpdateBench(*updJS, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		for _, p := range rep.Points {
			fmt.Printf("update %s/%s batch=%d (%d/%d tuples touched): incremental %.2fms, recompute %.2fms (%.1fx)\n",
				p.Dataset, p.Query, p.BatchSize, p.ChangedTuples, p.Tuples,
				p.IncrementalMillis, p.RecomputeMillis, p.Speedup)
		}
		fmt.Printf("wrote %s\n\n", *updJS)
	}

	if *benchJS != "" {
		rep, err := bench.ShapleyBenchReport(ctx, corpus, strategy, 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		if err := bench.WriteShapleyBench(*benchJS, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		for _, h := range rep.HeadToHead {
			fmt.Printf("shapley head-to-head %s/%s (n=%d, |C|=%d): per-fact %.2fms, gradient %.2fms (%.1fx)\n",
				h.Dataset, h.Query, h.NumFacts, h.DNNFSize, h.PerFactMillis, h.GradientMillis, h.Speedup)
		}
		for _, p := range rep.WorkerScaling {
			fmt.Printf("shapley worker scaling: workers=%d %.2fms (%.2fx)\n", p.Workers, p.Millis, p.Speedup)
		}
		fmt.Printf("wrote %s\n\n", *benchJS)
	}

	if *compJS != "" {
		rep, err := bench.CompileBenchReport(ctx, corpus, []int{1, 2, 4}, 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		if err := bench.WriteCompileBench(*compJS, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		for _, inst := range rep.Instances {
			fmt.Printf("compile head-to-head %s (%d clauses, %d components): serial %.2fms, best parallel %.2fx\n",
				inst.Name, inst.NumClauses, inst.Components, inst.SerialMillis, inst.BestSpeedup)
		}
		for _, p := range rep.Canonical {
			fmt.Printf("canonical cache %s: %d identical + %d renamed hits, %d misses (hit rate %.2f)\n",
				p.Name, p.IdenticalHits, p.RenamedHits, p.Misses, p.HitRate)
		}
		fmt.Printf("wrote %s\n\n", *compJS)
	}

	if want["table1"] {
		section("Table 1 — exact computation per query")
		fmt.Println(bench.Table1(corpus))
	}

	var recs []bench.InexactRecord
	budgets := []int{10, 20, 30, 40, 50}
	if want["table2"] || want["fig6"] || want["fig7"] {
		recs = bench.CompareInexact(corpus, budgets, 99)
	}
	if want["table2"] {
		section("Table 2 — inexact methods at 50·#facts samples (median (mean))")
		fmt.Println(bench.Table2(recs, 50))
	}
	if want["fig4"] {
		section("Figure 4 — KC / Algorithm 1 time vs provenance features")
		fmt.Println(bench.Figure4(corpus))
	}
	if want["fig5"] {
		section("Figure 5 — Algorithm 1 time vs lineitem scale")
		points, err := bench.RunScaling(ctx, opts.TPCH, []float64{0.25, 0.5, 0.75, 1.0},
			[]string{"q3", "q10", "q9", "q19"}, 2,
			core.PipelineOptions{CompileTimeout: *timeout, ShapleyTimeout: *timeout,
				Workers: *workers, CompileWorkers: *cworker, Strategy: strategy})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Println(bench.RenderScaling(points))
	}
	if want["fig6"] {
		section("Figure 6 — inexact methods vs sampling budget")
		fmt.Println(bench.Figure6(recs, budgets))
	}
	if want["fig7"] {
		section("Figure 7 — inexact methods vs #provenance facts (budget 20·n)")
		fmt.Println(bench.Figure7(recs, 20))
	}
	if want["fig8"] {
		section("Figure 8 — hybrid success rate and mean time vs timeout")
		timeouts := []time.Duration{
			100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
			time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
		}
		fmt.Println(bench.RenderFigure8(bench.Figure8(corpus, timeouts)))
	}
}

func section(title string) {
	fmt.Println("== " + title + " ==")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
