// Command groundbench times the grounding stage — query evaluation with
// lineage capture, before any Shapley work — across the evaluation matrix:
// streaming versus materialized engine, in-memory versus sorted storage
// backend, at several dataset scales. The two engines are cross-checked for
// identical answer sets on every cell, so a run doubles as the
// grounding-equivalence smoke test; -json writes the BENCH_ground.json
// document CI uploads.
//
// Usage:
//
//	groundbench -scales 1,4,16 -backends memory,sorted -json BENCH_ground.json
//	groundbench -scales 4 -check   # equivalence smoke only, summary to stdout
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/db"
)

func main() {
	var (
		scales   = flag.String("scales", "1,4,16", "comma-separated TPC-H scale factors")
		backends = flag.String("backends", "memory,sorted", "comma-separated storage backends")
		jsonPath = flag.String("json", "", "write the BENCH_ground.json document here")
		check    = flag.Bool("check", false, "print only the cross-check summary (answers are always cross-checked; this suppresses the timing table)")
	)
	flag.Parse()

	var sc []float64
	for _, s := range strings.Split(*scales, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			log.Fatalf("groundbench: bad scale %q", s)
		}
		sc = append(sc, v)
	}
	var bk []string
	for _, b := range strings.Split(*backends, ",") {
		b = strings.TrimSpace(b)
		if !db.KnownBackend(b) {
			log.Fatalf("groundbench: unknown backend %q (known: %v)", b, db.Backends())
		}
		if b == "" {
			b = db.BackendMemory
		}
		bk = append(bk, b)
	}

	rep, err := bench.RunGroundBench(context.Background(), sc, bk)
	if err != nil {
		log.Fatalf("groundbench: %v", err)
	}
	if *jsonPath != "" {
		if err := bench.WriteGroundBench(*jsonPath, rep); err != nil {
			log.Fatalf("groundbench: %v", err)
		}
		log.Printf("wrote %s", *jsonPath)
	}

	if *check {
		for _, c := range rep.Comparisons {
			fmt.Printf("scale %-4g %-8s identical answers; streaming %.2fx faster, %.0f%% fewer bytes\n",
				c.Scale, c.Backend, c.SpeedupX, 100*c.AllocReduction)
		}
		return
	}
	w := os.Stdout
	fmt.Fprintf(w, "%-6s %-8s %-13s %10s %9s %12s %14s\n",
		"scale", "backend", "engine", "facts", "ms", "facts/sec", "alloc")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%-6g %-8s %-13s %10d %9.1f %12.0f %14d\n",
			p.Scale, p.Backend, p.Engine, p.Facts, p.Millis, p.FactsPerSec, p.AllocBytes)
	}
	for _, c := range rep.Comparisons {
		fmt.Fprintf(w, "scale %-4g %-8s: streaming %.2fx faster, %.0f%% alloc reduction\n",
			c.Scale, c.Backend, c.SpeedupX, 100*c.AllocReduction)
	}
}
