// Command serveload is the explanation service's load generator CLI: it
// drives a shapleyd instance (or an in-process server when -url is empty)
// over HTTP with a configurable explain:update mix at several concurrency
// levels, prints the pooled vs open-per-request head-to-head, and writes
// BENCH_serve.json. It exits non-zero on any non-2xx response or any served
// value that is not big.Rat-identical to a cold repro.Explain, so CI can
// use it as a serve-smoke gate.
//
// Usage:
//
//	serveload                                   # in-process server
//	serveload -url http://127.0.0.1:8080        # externally started shapleyd
//	serveload -clients 1,4,16 -requests 8 -update-every 4 -json BENCH_serve.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/servebench"
	"repro/internal/server"
)

func main() {
	var (
		url     = flag.String("url", "", "target server base URL (empty = start an in-process server)")
		clients = flag.String("clients", "1,4,16", "comma-separated concurrency levels")
		reqs    = flag.Int("requests", 8, "explain requests per client per phase")
		updEv   = flag.Int("update-every", 4, "one update per this many explains in the mixed phase (-1 disables)")
		jsonOut = flag.String("json", "", "write BENCH_serve.json to this path (\"-\" = stdout)")
		pool    = flag.Int("pool", server.DefaultPoolSize, "in-process server's session pool capacity")
		timeout = flag.Duration("timeout", 2500*time.Millisecond, "per-tuple exact budget for the in-process server and the cold reference")
		budget  = flag.Float64("budget-ms", 0, "adds a budgeted phase: explains carrying this budget_ms, recording the exact/approximate mix and fallback latency")
		minSamp = flag.Int("approx-min-samples", 0, "in-process server's sampling fallback minimum permutation count (0 = sampler default)")
		allowAp = flag.Bool("allow-approx", false, "permit marked approximate answers in the quiesced value cross-check (for driving a starved server)")
	)
	flag.Parse()

	var levels []int
	for _, part := range strings.Split(*clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "serveload: bad -clients entry %q\n", part)
			os.Exit(1)
		}
		levels = append(levels, n)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := servebench.Run(ctx, servebench.Options{
		TargetURL:   *url,
		Clients:     levels,
		Requests:    *reqs,
		UpdateEvery: *updEv,
		PoolSize:    *pool,
		Repro: repro.Options{
			Timeout: *timeout,
			Budget:  repro.ExplainBudget{MinSamples: *minSamp},
		},
		BudgetMs:    *budget,
		AllowApprox: *allowAp,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}

	fmt.Printf("target: %s  (%d value cross-checks passed)\n", rep.Target, rep.ValueChecks)
	for _, lv := range rep.Levels {
		fmt.Printf("%-16s clients=%-3d explains=%-4d updates=%-4d p50=%.2fms p95=%.2fms p99=%.2fms  %.1f req/s\n",
			lv.Mode, lv.Clients, lv.Explains, lv.Updates,
			lv.Latency.P50Ms, lv.Latency.P95Ms, lv.Latency.P99Ms, lv.ThroughputRPS)
		if lv.Mode == "budgeted-pooled" {
			fmt.Printf("%-16s exact=%-4d approx=%-4d", "", lv.ExactExplains, lv.ApproxExplains)
			if lv.FallbackLatency != nil {
				fmt.Printf(" fallback p50=%.2fms p99=%.2fms", lv.FallbackLatency.P50Ms, lv.FallbackLatency.P99Ms)
			}
			fmt.Println()
		}
	}
	for _, h := range rep.HeadToHead {
		fmt.Printf("head-to-head clients=%-3d pooled p50 %.2fms vs open-per-request %.2fms (%.1fx); throughput %.1f vs %.1f req/s (%.1fx)\n",
			h.Clients, h.PooledP50Ms, h.UnpooledP50Ms, h.P50Speedup,
			h.PooledRPS, h.UnpooledRPS, h.ThroughputSpeedup)
	}
	fmt.Printf("client retries on 429/503: %d\n", rep.Retries)
	if rep.Degraded > 0 {
		fmt.Printf("server degraded (budget-exhausted, answered approximately): %d\n", rep.Degraded)
	}
	fmt.Printf("session pool: opens=%d reuses=%d evictions=%d update requests=%d batches=%d coalesced=%d\n",
		rep.Pool.Opens, rep.Pool.Reuses, rep.Pool.Evictions,
		rep.Pool.UpdateRequests, rep.Pool.UpdateBatches, rep.Pool.CoalescedBatches)
	fmt.Printf("compile cache: %d hits (%d identical, %d renamed), %d misses, %d evictions, %d invalidations\n",
		rep.Cache.Hits, rep.Cache.IdenticalHits, rep.Cache.RenamedHits,
		rep.Cache.Misses, rep.Cache.Evictions, rep.Cache.Invalidations)

	if *jsonOut != "" {
		if err := servebench.Write(*jsonOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			os.Exit(1)
		}
		if *jsonOut != "-" {
			fmt.Printf("wrote %s\n", *jsonOut)
		}
	}
}
